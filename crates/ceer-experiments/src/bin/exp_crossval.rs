//! Extension experiment: leave-one-out cross-validation over the 8 training
//! CNNs.
//!
//! The paper validates on a fixed 4-CNN test set; this probes the same
//! generalization claim eight more times, holding each training CNN out in
//! turn. It also reports the compute-vs-params correlation across the zoo
//! (the hidden reason the CNN-oblivious communication model works) and a
//! bootstrap confidence interval on the light-op median estimator.

use ceer_core::classify::OpClass;
use ceer_core::crossval::leave_one_out;
use ceer_core::{Ceer, FitConfig};
use ceer_experiments::{CheckList, ExperimentContext, Table};
use ceer_gpusim::GpuModel;
use ceer_stats::bootstrap::median_ci;
use ceer_stats::correlation;

fn main() {
    let ctx = ExperimentContext::from_env();
    // LOO fits 8 models; cap the profiling work.
    let config =
        FitConfig { iterations: ctx.fit_config().iterations.min(60), ..ctx.fit_config().clone() };

    println!("== Extension: leave-one-out cross-validation ==\n");
    let cv = leave_one_out(&config, &[1, 4]);

    let mut table = Table::new(vec!["held-out CNN", "MAPE", "worst config"]);
    for fold in &cv.folds {
        let worst = fold.errors.iter().max_by(|a, b| a.2.total_cmp(&b.2)).expect("non-empty");
        table.row(vec![
            fold.held_out.to_string(),
            format!("{:.1}%", fold.mape() * 100.0),
            format!("{} k={} ({:.1}%)", worst.0.aws_family(), worst.1, worst.2 * 100.0),
        ]);
    }
    table.print();
    println!("\ngrand LOO MAPE: {:.1}%", cv.mape() * 100.0);

    // Compute-vs-params correlation across the zoo (on P3).
    let runs = Ceer::collect_profiles(&FitConfig {
        parallel_degrees: vec![1],
        iterations: 6,
        ..config.clone()
    });
    let params: Vec<f64> = runs.iter().map(|(_, g, _)| g.parameter_count() as f64).collect();
    let compute: Vec<f64> = runs
        .iter()
        .map(|(_, _, ps)| {
            ps.iter().find(|p| p.gpu() == GpuModel::V100).expect("profiled").compute_mean_us()
        })
        .collect();
    let pearson = correlation::pearson(&params, &compute).expect("8 CNNs");
    let spearman = correlation::spearman(&params, &compute).expect("8 CNNs");
    println!(
        "compute-vs-params correlation across the zoo: Pearson {pearson:.2}, Spearman {spearman:.2}"
    );

    // Bootstrap CI on the light-op median estimator.
    let model = Ceer::fit_from_profiles(&config, &Ceer::collect_profiles(&config));
    let light_samples: Vec<f64> =
        Ceer::collect_profiles(&FitConfig { parallel_degrees: vec![1], iterations: 6, ..config })
            .iter()
            .flat_map(|(_, _, ps)| ps.iter())
            .flat_map(|p| {
                p.op_stats()
                    .iter()
                    .filter(|s| model.classification().class_of(s.kind) == OpClass::Light)
                    .map(|s| s.median_us)
                    .collect::<Vec<_>>()
            })
            .collect();
    let ci = median_ci(&light_samples, 400, 0.95, 7).expect("light ops exist");
    println!(
        "light-op median t̃_l = {:.1} us, 95% bootstrap CI [{:.1}, {:.1}]",
        ci.estimate, ci.low, ci.high
    );

    let mut checks = CheckList::new();
    checks.add(
        "LOO generalization error",
        "comparable to the test-set error (~4-6%)",
        format!("{:.1}%", cv.mape() * 100.0),
        cv.mape() < 0.12,
    );
    checks.add(
        "every fold stays usable",
        "no CNN is pathological to hold out",
        format!(
            "worst fold {:.1}% ({})",
            cv.worst_fold().expect("folds").mape() * 100.0,
            cv.worst_fold().expect("folds").held_out
        ),
        cv.worst_fold().expect("folds").mape() < 0.30,
    );
    checks.add(
        "compute correlates with params across the zoo",
        "positive (underpins the CNN-oblivious comm model)",
        format!("Pearson {pearson:.2}"),
        pearson > 0.3,
    );
    checks.add(
        "light-median estimator is stable",
        "tight CI around t̃_l",
        format!("CI width {:.1} us", ci.width()),
        ci.width() < ci.estimate,
    );
    checks.print();
}
