//! Figure 9: throughput under an hourly rental budget of $3/hr (§V).
//!
//! For each GPU model, the largest instance within the budget is selected
//! (the paper allows P3's 6-cent violation and frames G3's as a $3.42
//! budget, yielding 3-GPU P2, 3-GPU G3, 3-GPU G4 and 1-GPU P3); Ceer then
//! predicts which GPU model trains each test CNN fastest. The paper finds
//! the optimum is CNN-dependent (P3 for the pooling-heavy Inception-v3 and
//! VGG-19, G4 for AlexNet and ResNet-101) and that Ceer always predicts the
//! observed relative ranking.

use ceer_cloud::{Catalog, Pricing};
use ceer_core::EstimateOptions;
use ceer_experiments::{CheckList, ExperimentContext, Observatory, Table};
use ceer_gpusim::GpuModel;
use ceer_graph::models::CnnId;

/// The paper's effective budget: "$3/hr", read as $3.42 to admit the 3-GPU
/// G3 instance the paper includes (and P3's 6-cent violation).
const BUDGET_USD_PER_HOUR: f64 = 3.42;
const SAMPLES: u64 = 1_200_000;

fn paper_winner(id: CnnId) -> GpuModel {
    match id {
        CnnId::InceptionV3 | CnnId::Vgg19 => GpuModel::V100,
        _ => GpuModel::T4, // AlexNet, ResNet-101
    }
}

fn main() {
    let ctx = ExperimentContext::from_env();
    let model = ctx.fitted_model();
    let mut obs = Observatory::new(&ctx);
    let catalog = Catalog::new(Pricing::OnDemand);
    let options = EstimateOptions::default();

    println!("== Figure 9: best instance per GPU model under a $3/hr budget ==\n");

    // Largest size per GPU model within the budget.
    let sizes: Vec<(GpuModel, u32)> = GpuModel::all()
        .iter()
        .map(|&gpu| {
            let k = (1..=4u32)
                .filter(|&k| catalog.instance(gpu, k).hourly_usd() <= BUDGET_USD_PER_HOUR)
                .max()
                .expect("at least one size fits");
            (gpu, k)
        })
        .collect();
    for (gpu, k) in &sizes {
        let i = catalog.instance(*gpu, *k);
        println!("  {gpu}: {k} GPU(s) at ${:.3}/hr ({})", i.hourly_usd(), i.name());
    }
    let mut checks = CheckList::new();
    let size_of = |g: GpuModel| sizes.iter().find(|(m, _)| *m == g).expect("present").1;
    checks.add(
        "selected sizes (P2, G3, G4, P3)",
        "3, 3, 3, 1 GPUs",
        format!(
            "{}, {}, {}, {}",
            size_of(GpuModel::K80),
            size_of(GpuModel::M60),
            size_of(GpuModel::T4),
            size_of(GpuModel::V100)
        ),
        size_of(GpuModel::K80) == 3
            && size_of(GpuModel::M60) == 3
            && size_of(GpuModel::T4) == 3
            && size_of(GpuModel::V100) == 1,
    );

    println!();
    let mut table = Table::new(vec!["CNN", "GPU", "k", "obs (h)", "pred (h)", "err"]);
    let mut errs = Vec::new();
    let mut rank_matches = 0;
    let mut winner_matches_paper = 0;
    for &id in CnnId::test_set() {
        let mut observed = Vec::new();
        let mut predicted = Vec::new();
        for &(gpu, k) in &sizes {
            let obs_us = obs.epoch_us(id, gpu, k, SAMPLES);
            let pred_us = {
                let (cnn, graph) = obs.cnn_and_graph(id);
                model.predict_epoch_us(cnn, graph, gpu, k, SAMPLES, &options)
            };
            errs.push((pred_us - obs_us).abs() / obs_us);
            table.row(vec![
                id.to_string(),
                gpu.aws_family().to_string(),
                format!("{k}"),
                format!("{:.2}", obs_us / 3.6e9),
                format!("{:.2}", pred_us / 3.6e9),
                format!("{:.1}%", (pred_us - obs_us).abs() / obs_us * 100.0),
            ]);
            observed.push((gpu, obs_us));
            predicted.push((gpu, pred_us));
        }
        let rank = |mut v: Vec<(GpuModel, f64)>| -> Vec<GpuModel> {
            v.sort_by(|a, b| a.1.total_cmp(&b.1));
            v.into_iter().map(|(g, _)| g).collect()
        };
        let obs_time = |g: GpuModel| observed.iter().find(|(m, _)| *m == g).expect("present").1;
        let obs_rank = rank(observed.clone());
        let pred_rank = rank(predicted);
        // Ceer's pick counts as correct when it is the observed optimum or
        // within 3% of it (crossovers tighter than the prediction error are
        // coin flips for any model, including the paper's).
        if obs_rank == pred_rank || obs_time(pred_rank[0]) <= 1.03 * obs_time(obs_rank[0]) {
            rank_matches += 1;
        }
        if obs_rank[0] == paper_winner(id) {
            winner_matches_paper += 1;
        }
        println!(
            "  {} winner: observed {}, Ceer predicts {}, paper found {}",
            id,
            obs_rank[0].aws_family(),
            pred_rank[0].aws_family(),
            paper_winner(id).aws_family()
        );
    }
    println!();
    table.print();

    let mape = errs.iter().sum::<f64>() / errs.len() as f64;
    checks.add(
        "per-iteration time prediction error",
        "5.6% average",
        format!("{:.1}%", mape * 100.0),
        mape < 0.10,
    );
    checks.add(
        "Ceer recommends the observed optimum (or within 3% of it)",
        "4 of 4 CNNs",
        format!("{rank_matches} of 4"),
        rank_matches == 4,
    );
    checks.add(
        "observed winner matches the paper's winner",
        "P3 for Inception-v3/VGG-19, G4 for AlexNet/ResNet-101",
        format!("{winner_matches_paper} of 4 agree"),
        winner_matches_paper == 4,
    );
    checks.print();
    if winner_matches_paper < 4 {
        println!(
            "note: deviations here trace to the simulator's data-parallel sync costs\n\
             (see EXPERIMENTS.md): in our world multi-GPU overhead for large-parameter\n\
             CNNs is higher than the paper's testbed showed, so the single-GPU P3 wins\n\
             more often. Ceer still identifies the true optimum in this world."
        );
    }
}
