//! Figure 2: mean compute time of the heavy GPU operations on all four AWS
//! GPU models, averaged over the 8 training-set CNNs.
//!
//! Reproduces §III-A's headline ratios — P3 ≈ 10× lower compute time than
//! P2 and ≈ 4× lower than G4 on average, P2 ≈ 1.5× higher than G3 — plus
//! the coverage claims: the heavy ops contribute 47–94% of training time,
//! the light ops less than ~7%.

use std::collections::HashMap;

use ceer_core::classify::{Classification, OpClass};
use ceer_experiments::{CheckList, ExperimentContext, Observatory, Table};
use ceer_gpusim::GpuModel;
use ceer_graph::models::CnnId;
use ceer_graph::OpKind;

/// Two-level mean per kind (within CNN, then across CNNs), as in §III-A.
fn kind_means(obs: &mut Observatory, gpu: GpuModel) -> HashMap<OpKind, f64> {
    let mut per_cnn: HashMap<OpKind, Vec<f64>> = HashMap::new();
    for &id in CnnId::training_set() {
        let profile = obs.profile(id, gpu, 1);
        let mut sums: HashMap<OpKind, (f64, usize)> = HashMap::new();
        for stat in profile.op_stats() {
            let e = sums.entry(stat.kind).or_insert((0.0, 0));
            e.0 += stat.mean_us;
            e.1 += 1;
        }
        for (kind, (total, count)) in sums {
            per_cnn.entry(kind).or_default().push(total / count as f64);
        }
    }
    per_cnn.into_iter().map(|(k, v)| (k, v.iter().sum::<f64>() / v.len() as f64)).collect()
}

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut obs = Observatory::new(&ctx);

    println!("== Figure 2: operation-level compute times (us) across GPU models ==\n");

    let means: HashMap<GpuModel, HashMap<OpKind, f64>> =
        GpuModel::all().iter().map(|&g| (g, kind_means(&mut obs, g))).collect();

    // The empirical heavy set, learned exactly as Ceer learns it.
    let reference_profiles: Vec<_> =
        CnnId::training_set().iter().map(|&id| obs.profile(id, GpuModel::K80, 1).clone()).collect();
    let classification = Classification::from_profiles(&reference_profiles, GpuModel::K80);
    let mut heavy = classification.heavy_kinds();
    heavy.sort_by(|a, b| {
        means[&GpuModel::K80][b].partial_cmp(&means[&GpuModel::K80][a]).expect("finite")
    });

    let mut table = Table::new(vec!["operation", "P3/V100", "P2/K80", "G4/T4", "G3/M60"]);
    for &kind in &heavy {
        table.row(vec![
            kind.to_string(),
            format!("{:.0}", means[&GpuModel::V100][&kind]),
            format!("{:.0}", means[&GpuModel::K80][&kind]),
            format!("{:.0}", means[&GpuModel::T4][&kind]),
            format!("{:.0}", means[&GpuModel::M60][&kind]),
        ]);
    }
    table.print();

    // Average ratios across heavy ops.
    let avg_ratio = |num: GpuModel, den: GpuModel| -> f64 {
        let r: f64 = heavy.iter().map(|k| means[&num][k] / means[&den][k]).sum();
        r / heavy.len() as f64
    };
    let p2_p3 = avg_ratio(GpuModel::K80, GpuModel::V100);
    let g4_p3 = avg_ratio(GpuModel::T4, GpuModel::V100);
    let p2_g3 = avg_ratio(GpuModel::K80, GpuModel::M60);

    // Coverage: heavy / light share of per-iteration op time per CNN.
    let mut heavy_shares = Vec::new();
    let mut light_shares = Vec::new();
    for &id in CnnId::training_set() {
        let profile = obs.profile(id, GpuModel::K80, 1);
        let total = profile.total_op_time_us(|_| true);
        let heavy_time =
            profile.total_op_time_us(|s| classification.class_of(s.kind) == OpClass::Heavy);
        let light_time =
            profile.total_op_time_us(|s| classification.class_of(s.kind) == OpClass::Light);
        heavy_shares.push(heavy_time / total);
        light_shares.push(light_time / total);
    }
    let heavy_min = heavy_shares.iter().cloned().fold(f64::INFINITY, f64::min);
    let heavy_max = heavy_shares.iter().cloned().fold(0.0, f64::max);
    let light_max = light_shares.iter().cloned().fold(0.0, f64::max);

    println!();
    let mut checks = CheckList::new();
    checks.add(
        "heavy op kinds (Fig. 2 shows 20)",
        "20",
        format!("{}", heavy.len()),
        (15..=22).contains(&heavy.len()),
    );
    checks.add(
        "P3 vs P2 mean speedup",
        "~10x",
        format!("{p2_p3:.1}x"),
        (7.0..13.0).contains(&p2_p3),
    );
    checks.add("P3 vs G4 mean speedup", "~4x", format!("{g4_p3:.1}x"), (3.0..5.0).contains(&g4_p3));
    checks.add("P2 vs G3 mean ratio", "~1.5x", format!("{p2_g3:.2}x"), (1.2..1.8).contains(&p2_g3));
    checks.add(
        "heavy ops' share of training time",
        "47%-94%",
        format!("{:.0}%-{:.0}%", heavy_min * 100.0, heavy_max * 100.0),
        heavy_min > 0.45 && heavy_max < 0.99,
    );
    checks.add(
        "light ops' share of training time",
        "< 7%",
        format!("max {:.1}%", light_max * 100.0),
        light_max < 0.10,
    );
    checks.print();
}
