//! Figure 2: mean compute time of the heavy GPU operations on all four AWS
//! GPU models, averaged over the 8 training-set CNNs.
//!
//! Reproduces §III-A's headline ratios — P3 ≈ 10× lower compute time than
//! P2 and ≈ 4× lower than G4 on average, P2 ≈ 1.5× higher than G3 — plus
//! the coverage claims: the heavy ops contribute 47–94% of training time,
//! the light ops less than ~7%.
//!
//! The computation lives in [`ceer_experiments::figures::fig2_op_times`],
//! shared with the golden-file regression test.

use ceer_experiments::{figures, ExperimentContext};

fn main() {
    let (report, checks) = figures::fig2_op_times(&ExperimentContext::from_env());
    print!("{report}");
    checks.print();
}
