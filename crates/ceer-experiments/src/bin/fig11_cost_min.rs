//! Figure 11: minimum-cost training of Inception-v3 over one ImageNet epoch
//! under AWS On-Demand prices (§V).
//!
//! The paper: the 1-GPU G4 instance has the lowest training cost and Ceer
//! predicts it (2.1% average cost prediction error); picking the cheapest
//! hourly instance (1-GPU G3) or the most powerful one (4-GPU P3) costs
//! 1.6× and 1.8× more respectively.

use ceer_cloud::{Catalog, Pricing};
use ceer_core::recommend::{Objective, Workload};
use ceer_core::EstimateOptions;
use ceer_experiments::{CheckList, ExperimentContext, Observatory, Table};
use ceer_gpusim::GpuModel;
use ceer_graph::models::CnnId;

const SAMPLES: u64 = 1_200_000;
const CNN: CnnId = CnnId::InceptionV3;

fn main() {
    let ctx = ExperimentContext::from_env();
    let model = ctx.fitted_model();
    let mut obs = Observatory::new(&ctx);
    let catalog = Catalog::new(Pricing::OnDemand);
    let options = EstimateOptions::default();

    println!("== Figure 11: Inception-v3 training cost, AWS On-Demand prices ==\n");

    let mut table = Table::new(vec!["GPU", "k", "obs cost", "pred cost", "err"]);
    let mut rows = Vec::new();
    let mut errs = Vec::new();
    for &gpu in GpuModel::all() {
        for k in 1..=4u32 {
            let instance = catalog.instance(gpu, k);
            let obs_cost = obs.epoch_us(CNN, gpu, k, SAMPLES) * instance.usd_per_microsecond();
            let pred_cost = {
                let (cnn, graph) = obs.cnn_and_graph(CNN);
                model.predict_cost_usd(cnn, graph, &instance, SAMPLES, &options)
            };
            errs.push((pred_cost - obs_cost).abs() / obs_cost);
            table.row(vec![
                gpu.aws_family().to_string(),
                format!("{k}"),
                format!("${obs_cost:.2}"),
                format!("${pred_cost:.2}"),
                format!("{:.1}%", (pred_cost - obs_cost).abs() / obs_cost * 100.0),
            ]);
            rows.push((gpu, k, obs_cost));
        }
    }
    table.print();

    let obs_best =
        rows.iter().min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite")).expect("non-empty");
    let cost_of = |g: GpuModel, k: u32| {
        rows.iter().find(|(gg, kk, _)| *gg == g && *kk == k).expect("present").2
    };
    let rec = {
        let (cnn, _) = obs.cnn_and_graph(CNN);
        model
            .recommend(cnn, &catalog, &Workload::new(SAMPLES, 4), &Objective::MinimizeCost)
            .expect("cost minimization always feasible")
    };
    let mape = errs.iter().sum::<f64>() / errs.len() as f64;

    println!(
        "\nobserved cheapest: {}x {} (${:.2}); Ceer recommends {}",
        obs_best.1,
        obs_best.0.aws_family(),
        obs_best.2,
        rec.instance()
    );

    let mut checks = CheckList::new();
    checks.add(
        "cost prediction error",
        "2.1% average",
        format!("{:.1}%", mape * 100.0),
        mape < 0.06,
    );
    checks.add(
        "lowest-cost instance",
        "1-GPU G4",
        format!("{}x {}", obs_best.1, obs_best.0.aws_family()),
        obs_best.0 == GpuModel::T4 && obs_best.1 == 1,
    );
    checks.add(
        "Ceer recommends the observed optimum",
        "1-GPU G4",
        rec.instance().name().to_string(),
        rec.instance().gpu() == obs_best.0 && rec.instance().gpu_count() == obs_best.1,
    );
    checks.add(
        "cheapest-hourly strategy penalty (1-GPU G3)",
        "1.6x higher cost",
        format!("{:.1}x", cost_of(GpuModel::M60, 1) / obs_best.2),
        cost_of(GpuModel::M60, 1) / obs_best.2 > 1.2,
    );
    checks.add(
        "most-powerful strategy penalty (4-GPU P3)",
        "1.8x higher cost",
        format!("{:.1}x", cost_of(GpuModel::V100, 4) / obs_best.2),
        cost_of(GpuModel::V100, 4) / obs_best.2 > 1.2,
    );
    checks.print();
}
