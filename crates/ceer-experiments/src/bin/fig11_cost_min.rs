//! Figure 11: minimum-cost training of Inception-v3 over one ImageNet epoch
//! under AWS On-Demand prices (§V).
//!
//! The paper: the 1-GPU G4 instance has the lowest training cost and Ceer
//! predicts it (2.1% average cost prediction error); picking the cheapest
//! hourly instance (1-GPU G3) or the most powerful one (4-GPU P3) costs
//! 1.6× and 1.8× more respectively.
//!
//! The computation lives in [`ceer_experiments::figures::fig11_cost_min`],
//! shared with the golden-file regression test.

use ceer_experiments::{figures, ExperimentContext};

fn main() {
    let (report, checks) = figures::fig11_cost_min(&ExperimentContext::from_env());
    print!("{report}");
    checks.print();
}
