//! Figure computations shared by the `src/bin/` regenerators and the
//! golden-file regression tests.
//!
//! Each function returns the figure's report text (everything the binary
//! prints before the verdict block) together with its [`CheckList`], so a
//! binary prints them while a test snapshots
//! `report + checks.render()` byte-for-byte. The output is a pure function
//! of the [`ExperimentContext`] — independent of thread count, environment
//! and host — which is exactly what the golden files assert.

use std::collections::BTreeMap;
use std::fmt::Write;

use ceer_cloud::{Catalog, Pricing};
use ceer_core::classify::{Classification, OpClass};
use ceer_core::recommend::{Objective, Workload};
use ceer_core::EstimateOptions;
use ceer_gpusim::GpuModel;
use ceer_graph::models::CnnId;
use ceer_graph::OpKind;

use crate::{CheckList, ExperimentContext, Observatory, Table};

/// Two-level mean per kind (within CNN, then across CNNs), as in §III-A.
fn kind_means(obs: &mut Observatory, gpu: GpuModel) -> BTreeMap<OpKind, f64> {
    let mut per_cnn: BTreeMap<OpKind, Vec<f64>> = BTreeMap::new();
    for &id in CnnId::training_set() {
        let profile = obs.profile(id, gpu, 1);
        let mut sums: BTreeMap<OpKind, (f64, usize)> = BTreeMap::new();
        for stat in profile.op_stats() {
            let e = sums.entry(stat.kind).or_insert((0.0, 0));
            e.0 += stat.mean_us;
            e.1 += 1;
        }
        for (kind, (total, count)) in sums {
            per_cnn.entry(kind).or_default().push(total / count as f64);
        }
    }
    per_cnn.into_iter().map(|(k, v)| (k, v.iter().sum::<f64>() / v.len() as f64)).collect()
}

/// Figure 2: mean compute time of the heavy GPU operations on all four AWS
/// GPU models, averaged over the 8 training-set CNNs (§III-A).
pub fn fig2_op_times(ctx: &ExperimentContext) -> (String, CheckList) {
    let mut obs = Observatory::new(ctx);
    let mut report = String::new();

    writeln!(report, "== Figure 2: operation-level compute times (us) across GPU models ==\n")
        .expect("write to string");

    let means: BTreeMap<GpuModel, BTreeMap<OpKind, f64>> =
        GpuModel::all().iter().map(|&g| (g, kind_means(&mut obs, g))).collect();

    // The empirical heavy set, learned exactly as Ceer learns it.
    let reference_profiles: Vec<_> =
        CnnId::training_set().iter().map(|&id| obs.profile(id, GpuModel::K80, 1).clone()).collect();
    let classification = Classification::from_profiles(&reference_profiles, GpuModel::K80);
    let mut heavy = classification.heavy_kinds();
    heavy.sort_by(|a, b| means[&GpuModel::K80][b].total_cmp(&means[&GpuModel::K80][a]));

    let mut table = Table::new(vec!["operation", "P3/V100", "P2/K80", "G4/T4", "G3/M60"]);
    for &kind in &heavy {
        table.row(vec![
            kind.to_string(),
            format!("{:.0}", means[&GpuModel::V100][&kind]),
            format!("{:.0}", means[&GpuModel::K80][&kind]),
            format!("{:.0}", means[&GpuModel::T4][&kind]),
            format!("{:.0}", means[&GpuModel::M60][&kind]),
        ]);
    }
    report.push_str(&table.render());

    // Average ratios across heavy ops.
    let avg_ratio = |num: GpuModel, den: GpuModel| -> f64 {
        let r: f64 = heavy.iter().map(|k| means[&num][k] / means[&den][k]).sum();
        r / heavy.len() as f64
    };
    let p2_p3 = avg_ratio(GpuModel::K80, GpuModel::V100);
    let g4_p3 = avg_ratio(GpuModel::T4, GpuModel::V100);
    let p2_g3 = avg_ratio(GpuModel::K80, GpuModel::M60);

    // Coverage: heavy / light share of per-iteration op time per CNN.
    let mut heavy_shares = Vec::new();
    let mut light_shares = Vec::new();
    for &id in CnnId::training_set() {
        let profile = obs.profile(id, GpuModel::K80, 1);
        let total = profile.total_op_time_us(|_| true);
        let heavy_time =
            profile.total_op_time_us(|s| classification.class_of(s.kind) == OpClass::Heavy);
        let light_time =
            profile.total_op_time_us(|s| classification.class_of(s.kind) == OpClass::Light);
        heavy_shares.push(heavy_time / total);
        light_shares.push(light_time / total);
    }
    let heavy_min = heavy_shares.iter().cloned().fold(f64::INFINITY, f64::min);
    let heavy_max = heavy_shares.iter().cloned().fold(0.0, f64::max);
    let light_max = light_shares.iter().cloned().fold(0.0, f64::max);

    report.push('\n');
    let mut checks = CheckList::new();
    checks.add(
        "heavy op kinds (Fig. 2 shows 20)",
        "20",
        format!("{}", heavy.len()),
        (15..=22).contains(&heavy.len()),
    );
    checks.add(
        "P3 vs P2 mean speedup",
        "~10x",
        format!("{p2_p3:.1}x"),
        (7.0..13.0).contains(&p2_p3),
    );
    checks.add("P3 vs G4 mean speedup", "~4x", format!("{g4_p3:.1}x"), (3.0..5.0).contains(&g4_p3));
    checks.add("P2 vs G3 mean ratio", "~1.5x", format!("{p2_g3:.2}x"), (1.2..1.8).contains(&p2_g3));
    checks.add(
        "heavy ops' share of training time",
        "47%-94%",
        format!("{:.0}%-{:.0}%", heavy_min * 100.0, heavy_max * 100.0),
        heavy_min > 0.45 && heavy_max < 0.99,
    );
    checks.add(
        "light ops' share of training time",
        "< 7%",
        format!("max {:.1}%", light_max * 100.0),
        light_max < 0.10,
    );
    (report, checks)
}

/// Samples per ImageNet epoch in the Figure 11 experiment.
const FIG11_SAMPLES: u64 = 1_200_000;
/// The CNN Figure 11 trains.
const FIG11_CNN: CnnId = CnnId::InceptionV3;

/// Figure 11: minimum-cost training of Inception-v3 over one ImageNet epoch
/// under AWS On-Demand prices (§V).
pub fn fig11_cost_min(ctx: &ExperimentContext) -> (String, CheckList) {
    let model = ctx.fitted_model();
    let mut obs = Observatory::new(ctx);
    let catalog = Catalog::new(Pricing::OnDemand);
    let options = EstimateOptions::default();
    let mut report = String::new();

    writeln!(report, "== Figure 11: Inception-v3 training cost, AWS On-Demand prices ==\n")
        .expect("write to string");

    let mut table = Table::new(vec!["GPU", "k", "obs cost", "pred cost", "err"]);
    let mut rows = Vec::new();
    let mut errs = Vec::new();
    for &gpu in GpuModel::all() {
        for k in 1..=4u32 {
            let instance = catalog.instance(gpu, k);
            let obs_cost =
                obs.epoch_us(FIG11_CNN, gpu, k, FIG11_SAMPLES) * instance.usd_per_microsecond();
            let pred_cost = {
                let (cnn, graph) = obs.cnn_and_graph(FIG11_CNN);
                model.predict_cost_usd(cnn, graph, &instance, FIG11_SAMPLES, &options)
            };
            errs.push((pred_cost - obs_cost).abs() / obs_cost);
            table.row(vec![
                gpu.aws_family().to_string(),
                format!("{k}"),
                format!("${obs_cost:.2}"),
                format!("${pred_cost:.2}"),
                format!("{:.1}%", (pred_cost - obs_cost).abs() / obs_cost * 100.0),
            ]);
            rows.push((gpu, k, obs_cost));
        }
    }
    report.push_str(&table.render());

    let obs_best = rows.iter().min_by(|a, b| a.2.total_cmp(&b.2)).expect("non-empty");
    let cost_of = |g: GpuModel, k: u32| {
        rows.iter().find(|(gg, kk, _)| *gg == g && *kk == k).expect("present").2
    };
    let rec = {
        let (cnn, _) = obs.cnn_and_graph(FIG11_CNN);
        model
            .recommend(cnn, &catalog, &Workload::new(FIG11_SAMPLES, 4), &Objective::MinimizeCost)
            .expect("cost minimization always feasible")
    };
    let mape = errs.iter().sum::<f64>() / errs.len() as f64;

    writeln!(
        report,
        "\nobserved cheapest: {}x {} (${:.2}); Ceer recommends {}",
        obs_best.1,
        obs_best.0.aws_family(),
        obs_best.2,
        rec.instance()
    )
    .expect("write to string");

    let mut checks = CheckList::new();
    checks.add(
        "cost prediction error",
        "2.1% average",
        format!("{:.1}%", mape * 100.0),
        mape < 0.06,
    );
    checks.add(
        "lowest-cost instance",
        "1-GPU G4",
        format!("{}x {}", obs_best.1, obs_best.0.aws_family()),
        obs_best.0 == GpuModel::T4 && obs_best.1 == 1,
    );
    checks.add(
        "Ceer recommends the observed optimum",
        "1-GPU G4",
        rec.instance().name().to_string(),
        rec.instance().gpu() == obs_best.0 && rec.instance().gpu_count() == obs_best.1,
    );
    checks.add(
        "cheapest-hourly strategy penalty (1-GPU G3)",
        "1.6x higher cost",
        format!("{:.1}x", cost_of(GpuModel::M60, 1) / obs_best.2),
        cost_of(GpuModel::M60, 1) / obs_best.2 > 1.2,
    );
    checks.add(
        "most-powerful strategy penalty (4-GPU P3)",
        "1.8x higher cost",
        format!("{:.1}x", cost_of(GpuModel::V100, 4) / obs_best.2),
        cost_of(GpuModel::V100, 4) / obs_best.2 > 1.2,
    );
    (report, checks)
}
