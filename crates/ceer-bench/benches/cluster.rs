//! What sharded serving costs over direct evaluation: the same
//! `/predict` measured three ways — calling `api::predict` in-process,
//! routing it through the simulated cluster's event loop, and a full
//! HTTP round trip against the real-TCP cluster on loopback.
//!
//! Besides the criterion timings this bench writes `BENCH_cluster.json`
//! at the repository root. The numbers are honest about the host: on a
//! single core the TCP arm measures connect-per-request plus
//! thread-handoff overhead with every node time-slicing one CPU, so read
//! the sim arm (single-threaded by construction) for the state-machine
//! cost and the TCP arm as an upper bound.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use ceer_cluster::{
    Cluster, ClusterConfig, RouterConfig, RouterNode, ScriptEntry, ShardConfig, ShardNode,
    SimClient,
};
use ceer_core::{Ceer, CeerModel, FitConfig};
use ceer_graph::models::CnnId;
use ceer_serve::api::{self, PredictRequest};
use ceer_serve::Client;
use ceer_sim::{NetProfile, NodeId, Sim};
use criterion::Criterion;

/// Repetitions behind each snapshot median.
const SNAPSHOT_REPS: usize = 5;
/// Requests per simulated batch run (per-request cost = total / this).
const SIM_REQUESTS: u64 = 100;
/// Shard fleet in both the sim and the TCP arms.
const SHARDS: u32 = 3;
const REPLICAS: usize = 2;

const BODY: &str = "{\"cnn\": \"vgg11\", \"batch\": 32}";

fn tiny_model() -> CeerModel {
    Ceer::fit(&FitConfig {
        cnns: vec![CnnId::Vgg11],
        iterations: 2,
        parallel_degrees: vec![1],
        seed: 11,
        ..FitConfig::default()
    })
}

/// Builds router + shards + a client scripted to fire `requests`
/// predicts 5 virtual ms apart, runs to completion, asserts every
/// request was answered 200.
fn run_sim_batch(model: &Arc<CeerModel>, requests: u64) {
    let mut sim = Sim::with(42, NetProfile::default(), None);
    let router_id = NodeId(1);
    let shard_ids: Vec<NodeId> = (0..SHARDS).map(|i| NodeId(2 + i)).collect();
    let shard_list: Vec<(NodeId, String)> =
        shard_ids.iter().enumerate().map(|(i, &id)| (id, format!("shard-{i}"))).collect();
    let router_config = RouterConfig::new(shard_list, REPLICAS);
    let reload_source = Box::new(move || Err("no reload in this bench".to_string()));
    sim.add_node("router", Box::new(RouterNode::new(router_config, reload_source)));
    for (i, &id) in shard_ids.iter().enumerate() {
        let mut config = ShardConfig::new(format!("shard-{i}"), router_id);
        config.peers = shard_ids.iter().copied().filter(|&p| p != id).collect();
        // Distinct cache keys per request would hide the routing cost
        // behind model evaluation; a tiny cache keeps it visible anyway.
        config.cache_capacity = 4;
        sim.add_node(
            &format!("shard-{i}"),
            Box::new(ShardNode::new(config, Arc::clone(model), None)),
        );
    }
    let script: Vec<ScriptEntry> = (0..requests)
        .map(|i| {
            let batch = 1 + (i % 64);
            ScriptEntry::post(
                10 + i * 5,
                "/predict",
                format!("{{\"cnn\": \"vgg11\", \"batch\": {batch}}}"),
            )
        })
        .collect();
    let client = sim.add_node("client", Box::new(SimClient::new(router_id, script)));
    sim.run_until(10 + requests * 5 + 2_000);
    let answered = sim.node::<SimClient>(client).expect("client node").answers.len() as u64;
    assert_eq!(answered, requests, "every simulated request must be answered");
}

/// Median wall-clock microseconds of `f` over `SNAPSHOT_REPS` runs.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..SNAPSHOT_REPS)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    median_us: f64,
    per_request_us: f64,
    requests: u64,
}

#[derive(serde::Serialize)]
struct Snapshot {
    host_threads: usize,
    shards: u32,
    replicas: usize,
    reps_per_median: usize,
    note: String,
    benches: Vec<BenchEntry>,
}

fn entry(name: &str, requests: u64, mut f: impl FnMut()) -> BenchEntry {
    let median = median_us(&mut f);
    let per_request = median / requests as f64;
    println!("{name:32} median {median:>12.0} us   per request {per_request:>9.1} us");
    BenchEntry { name: name.to_string(), median_us: median, per_request_us: per_request, requests }
}

fn write_snapshot(model: &Arc<CeerModel>) {
    let host_threads =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let request: PredictRequest = serde_json::from_str(BODY).expect("parses");

    let model_path =
        std::env::temp_dir().join(format!("ceer-bench-cluster-{}.json", std::process::id()));
    std::fs::write(&model_path, serde_json::to_vec(model.as_ref()).expect("serializes"))
        .expect("write model");
    let cluster = Cluster::start(&ClusterConfig {
        shards: SHARDS,
        replicas: REPLICAS,
        model_path: model_path.clone(),
        ..ClusterConfig::default()
    })
    .expect("cluster boots");
    let client = Client::new(cluster.http_addr());

    println!("\n== BENCH_cluster.json snapshot (host_threads = {host_threads}) ==");
    let benches = vec![
        entry("direct/api_predict", 1, || {
            black_box(api::predict(black_box(model), black_box(&request)).expect("predicts"));
        }),
        entry(&format!("sim/predict_x{SIM_REQUESTS}"), SIM_REQUESTS, || {
            run_sim_batch(model, SIM_REQUESTS);
        }),
        entry("tcp/predict_round_trip", 1, || {
            black_box(client.predict(black_box(&request)).expect("round trip"));
        }),
    ];
    let snapshot = Snapshot {
        host_threads,
        shards: SHARDS,
        replicas: REPLICAS,
        reps_per_median: SNAPSHOT_REPS,
        note: "per-request cost of the same /predict: direct evaluation, routed \
               through the single-threaded simulated cluster (includes virtual \
               network + replication bookkeeping), and a real HTTP round trip on \
               loopback TCP (connect per request; on a 1-core host all nodes \
               time-slice one CPU, so treat it as an upper bound)"
            .to_string(),
        benches,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    let body = serde_json::to_string_pretty(&snapshot).expect("serializes");
    std::fs::write(path, body + "\n").expect("write BENCH_cluster.json");
    println!("wrote {path}");

    cluster.shutdown();
    std::fs::remove_file(&model_path).ok();
}

fn bench_direct(c: &mut Criterion, model: &Arc<CeerModel>) {
    let request: PredictRequest = serde_json::from_str(BODY).expect("parses");
    let mut group = c.benchmark_group("cluster_direct");
    group.sample_size(20);
    group.bench_function("api_predict", |b| {
        b.iter(|| api::predict(black_box(model), black_box(&request)).expect("predicts"));
    });
    group.finish();
}

fn bench_sim(c: &mut Criterion, model: &Arc<CeerModel>) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    group.bench_function(format!("predict_x{SIM_REQUESTS}"), |b| {
        b.iter(|| run_sim_batch(model, SIM_REQUESTS));
    });
    group.finish();
}

fn main() {
    let model = Arc::new(tiny_model());
    let mut criterion = Criterion::default();
    bench_direct(&mut criterion, &model);
    bench_sim(&mut criterion, &model);
    write_snapshot(&model);
}
