//! Benchmarks for the GPU simulator and the training-loop profiler — the
//! machinery behind every "observed" number in the evaluation.

use ceer_gpusim::{workload::workload, GpuModel, OpTimer};
use ceer_graph::models::{Cnn, CnnId};
use ceer_trainer::Trainer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_workload_lowering(c: &mut Criterion) {
    let cnn = Cnn::build(CnnId::InceptionV3, 32);
    let graph = cnn.training_graph();
    let mut group = c.benchmark_group("workload_lowering");
    group.throughput(Throughput::Elements(graph.len() as u64));
    group.bench_function("inception_v3_all_ops", |b| {
        b.iter(|| graph.nodes().iter().map(|n| workload(black_box(n), &graph).flops).sum::<f64>());
    });
    group.finish();
}

fn bench_expected_durations(c: &mut Criterion) {
    let cnn = Cnn::build(CnnId::ResNet50, 32);
    let graph = cnn.training_graph();
    let mut group = c.benchmark_group("expected_durations");
    group.throughput(Throughput::Elements(graph.len() as u64));
    for &gpu in GpuModel::all() {
        let timer = OpTimer::new(gpu);
        group.bench_with_input(
            BenchmarkId::from_parameter(gpu.aws_family()),
            &timer,
            |b, timer| {
                b.iter(|| {
                    graph.nodes().iter().map(|n| timer.expected_duration_us(n, &graph)).sum::<f64>()
                });
            },
        );
    }
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_10_iterations");
    group.sample_size(10);
    for &id in &[CnnId::AlexNet, CnnId::InceptionV3] {
        let cnn = Cnn::build(id, 32);
        let graph = cnn.training_graph();
        group.bench_with_input(BenchmarkId::from_parameter(id.name()), &cnn, |b, cnn| {
            b.iter(|| {
                Trainer::new(GpuModel::T4, 1).with_seed(1).profile_graph(black_box(cnn), &graph, 10)
            });
        });
    }
    group.finish();
}

fn bench_multi_gpu_profiling(c: &mut Criterion) {
    let cnn = Cnn::build(CnnId::InceptionV1, 32);
    let graph = cnn.training_graph();
    let mut group = c.benchmark_group("profile_by_gpu_count");
    group.sample_size(10);
    for k in [1u32, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| Trainer::new(GpuModel::V100, k).with_seed(2).profile_graph(&cnn, &graph, 10));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_workload_lowering,
    bench_expected_durations,
    bench_profiling,
    bench_multi_gpu_profiling
);
criterion_main!(benches);
