//! Benchmarks for the statistics substrate: the regression fits Ceer runs
//! once per (operation kind, GPU model) and the summary statistics the
//! profiler aggregates millions of times.

use ceer_stats::regression::{MultipleOls, PolynomialOls, SimpleOls};
use ceer_stats::rng::DeterministicRng;
use ceer_stats::summary;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn synthetic_xy(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = DeterministicRng::from_seed(42);
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 3.7 + rng.uniform()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 5.0 + rng.normal(0.0, 0.3)).collect();
    (xs, ys)
}

fn bench_simple_ols(c: &mut Criterion) {
    let mut group = c.benchmark_group("simple_ols_fit");
    for n in [100usize, 1000, 10_000] {
        let (xs, ys) = synthetic_xy(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SimpleOls::fit(black_box(&xs), black_box(&ys)).unwrap());
        });
    }
    group.finish();
}

fn bench_multiple_ols(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiple_ols_fit");
    for features in [2usize, 4, 8] {
        let mut rng = DeterministicRng::from_seed(7);
        let rows: Vec<Vec<f64>> =
            (0..500).map(|_| (0..features).map(|_| rng.uniform_in(0.0, 100.0)).collect()).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().enumerate().map(|(i, v)| (i + 1) as f64 * v).sum::<f64>() + 3.0)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(features), &features, |b, _| {
            b.iter(|| MultipleOls::fit(black_box(&rows), black_box(&ys)).unwrap());
        });
    }
    group.finish();
}

fn bench_polynomial_selection(c: &mut Criterion) {
    let (xs, ys) = synthetic_xy(1000);
    c.bench_function("polynomial_fit_deg2", |b| {
        b.iter(|| PolynomialOls::fit(black_box(&xs), black_box(&ys), 2).unwrap());
    });
}

fn bench_summary(c: &mut Criterion) {
    let (_, ys) = synthetic_xy(10_000);
    c.bench_function("median_10k", |b| b.iter(|| summary::median(black_box(&ys)).unwrap()));
    c.bench_function("summary_10k", |b| {
        b.iter(|| ceer_stats::Summary::of(black_box(&ys)).unwrap());
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("noise_factor_1m", |b| {
        b.iter(|| {
            let mut rng = DeterministicRng::from_seed(1);
            let mut acc = 0.0;
            for _ in 0..1_000_000 {
                acc += rng.noise_factor(0.05);
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_simple_ols,
    bench_multiple_ols,
    bench_polynomial_selection,
    bench_summary,
    bench_rng
);
criterion_main!(benches);
