//! Transport cost of one HTTP round trip: the blocking
//! thread-per-connection server against the evented epoll loop, same
//! model, same loopback host. Besides the criterion timings this bench
//! writes `BENCH_serve.json` at the repository root with p50/p99
//! latency and requests-per-second for each arm.
//!
//! Honest 1-core note: client and servers time-slice the same CPU here,
//! so absolute latencies are inflated by scheduler handoffs and req/s is
//! a lower bound; read the arms *relative to each other*. The evented
//! loop's headline win — thousands of concurrent connections on one
//! core — is not measurable with a loopback echo client at all; it is
//! asserted by `tests/chaos.rs::sim_accept_storm_10k_connections_on_one_core`
//! under the simulated readiness driver.

use std::hint::black_box;
use std::time::Instant;

use ceer_core::{Ceer, CeerModel, FitConfig};
use ceer_graph::models::CnnId;
use ceer_serve::api::PredictRequest;
use ceer_serve::{Client, ClientConn, EventedServer, ModelRegistry, Server, ServerConfig};
use criterion::Criterion;

/// Round trips behind each latency distribution.
const REQUESTS: usize = 300;

const BODY: &str = "{\"cnn\": \"vgg11\", \"batch\": 32}";

fn tiny_model() -> CeerModel {
    Ceer::fit(&FitConfig {
        cnns: vec![CnnId::Vgg11],
        iterations: 2,
        parallel_degrees: vec![1],
        seed: 11,
        ..FitConfig::default()
    })
}

fn config() -> ServerConfig {
    ServerConfig {
        host: "127.0.0.1".to_string(),
        port: 0,
        workers: 2,
        cache_capacity: 64,
        ..ServerConfig::default()
    }
}

/// Runs `one` `REQUESTS` times; returns per-call latencies (µs, sorted)
/// and the total wall-clock seconds.
fn sample(mut one: impl FnMut()) -> (Vec<f64>, f64) {
    let started = Instant::now();
    let mut samples: Vec<f64> = (0..REQUESTS)
        .map(|_| {
            let t = Instant::now();
            one();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    let total = started.elapsed().as_secs_f64();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (samples, total)
}

/// Nearest-rank percentile of an already sorted sample set.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    p50_us: f64,
    p99_us: f64,
    req_per_s: f64,
    requests: usize,
}

#[derive(serde::Serialize)]
struct Snapshot {
    host_threads: usize,
    requests_per_arm: usize,
    note: String,
    benches: Vec<BenchEntry>,
}

fn entry(name: &str, mut one: impl FnMut()) -> BenchEntry {
    // One warm-up call primes caches (prediction LRU, connection pools)
    // so the distribution measures the steady state.
    one();
    let (sorted, total) = sample(&mut one);
    let p50 = percentile(&sorted, 50.0);
    let p99 = percentile(&sorted, 99.0);
    let rps = REQUESTS as f64 / total;
    println!("{name:44} p50 {p50:>9.1} us   p99 {p99:>9.1} us   {rps:>8.0} req/s");
    BenchEntry {
        name: name.to_string(),
        p50_us: p50,
        p99_us: p99,
        req_per_s: rps,
        requests: REQUESTS,
    }
}

fn write_snapshot(model: &CeerModel) {
    let host_threads =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let request: PredictRequest = serde_json::from_str(BODY).expect("parses");
    let body = serde_json::to_vec(&request).expect("serializes");

    let blocking = Server::start(&config(), ModelRegistry::from_model(model.clone()))
        .expect("blocking server starts");
    let evented = EventedServer::start(&config(), ModelRegistry::from_model(model.clone()))
        .expect("evented server starts");

    let blocking_client = Client::new(blocking.addr());
    let evented_client = Client::new(evented.addr());
    let mut conn = ClientConn::new(evented.addr());

    println!("\n== BENCH_serve.json snapshot (host_threads = {host_threads}) ==");
    let benches = vec![
        entry("blocking/healthz_connect_per_request", || {
            black_box(blocking_client.get("/healthz").expect("healthz"));
        }),
        entry("evented/healthz_connect_per_request", || {
            black_box(evented_client.get("/healthz").expect("healthz"));
        }),
        entry("evented/healthz_keep_alive", || {
            black_box(conn.request("GET", "/healthz", b"").expect("healthz"));
        }),
        entry("blocking/predict_cached_connect_per_request", || {
            black_box(blocking_client.request("POST", "/predict", &body).expect("predict"));
        }),
        entry("evented/predict_cached_keep_alive", || {
            black_box(conn.request("POST", "/predict", &body).expect("predict"));
        }),
    ];
    let snapshot = Snapshot {
        host_threads,
        requests_per_arm: REQUESTS,
        note: "sequential loopback round trips; client and servers time-slice the \
               same CPU on a 1-core host, so absolute latencies are inflated and \
               req/s is a lower bound — compare arms relative to each other. The \
               evented transport's concurrency headroom (10k connections on one \
               core) is asserted separately under the simulated readiness driver \
               in tests/chaos.rs."
            .to_string(),
        benches,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let body = serde_json::to_string_pretty(&snapshot).expect("serializes");
    std::fs::write(path, body + "\n").expect("write BENCH_serve.json");
    println!("wrote {path}");

    blocking.shutdown();
    evented.shutdown();
}

fn bench_round_trips(c: &mut Criterion, model: &CeerModel) {
    let blocking = Server::start(&config(), ModelRegistry::from_model(model.clone()))
        .expect("blocking server starts");
    let evented = EventedServer::start(&config(), ModelRegistry::from_model(model.clone()))
        .expect("evented server starts");
    let blocking_client = Client::new(blocking.addr());
    let evented_client = Client::new(evented.addr());
    let mut conn = ClientConn::new(evented.addr());

    let mut group = c.benchmark_group("serve_round_trip");
    group.sample_size(20);
    group.bench_function("blocking_healthz", |b| {
        b.iter(|| blocking_client.get("/healthz").expect("healthz"));
    });
    group.bench_function("evented_healthz", |b| {
        b.iter(|| evented_client.get("/healthz").expect("healthz"));
    });
    group.bench_function("evented_healthz_keep_alive", |b| {
        b.iter(|| conn.request("GET", "/healthz", b"").expect("healthz"));
    });
    group.finish();

    blocking.shutdown();
    evented.shutdown();
}

fn main() {
    let model = tiny_model();
    let mut criterion = Criterion::default();
    bench_round_trips(&mut criterion, &model);
    write_snapshot(&model);
}
