//! What durability costs: WAL commit latency on the real filesystem —
//! single-record commits versus group commits — plus snapshot rotation
//! and recovery replay time.
//!
//! The WAL's group commit exists because the dominant cost of a commit
//! is the fsync, not the bytes: batching 32 records behind one sync
//! should divide the per-record cost by roughly the batch size. Recovery
//! is measured as `DurableStore::open` over a directory holding one
//! snapshot and a populated WAL suffix — the cold-start price a serving
//! process pays after a crash.
//!
//! Besides the criterion timings this bench writes `BENCH_durable.json`
//! at the repository root.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use ceer_durable::{write_atomic, DurableRecord, DurableStore, FsStorage, Storage};
use criterion::Criterion;

/// Repetitions behind each snapshot median.
const SNAPSHOT_REPS: usize = 5;
/// Records per group commit in the batched arm.
const GROUP: usize = 32;
/// WAL records behind the recovery-replay measurement.
const REPLAY: usize = 256;

/// A fresh scratch directory under the system temp root. Each call gets
/// its own directory so reps never replay a previous rep's WAL.
fn scratch(tag: &str, rep: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ceer-bench-durable-{}-{tag}-{rep}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &PathBuf) -> DurableStore {
    let storage: Arc<dyn Storage> =
        Arc::new(FsStorage::open(dir).expect("scratch directory opens"));
    let (store, _) = DurableStore::open(storage, ceer_faults::none(), "{}").expect("fresh boot");
    store
}

fn record(version: u64) -> DurableRecord {
    DurableRecord::Promoted { version }
}

/// Median wall-clock microseconds over `SNAPSHOT_REPS` runs, each given
/// its own pre-built context by `setup`.
fn median_us<T>(tag: &str, mut setup: impl FnMut(usize) -> T, mut f: impl FnMut(&mut T)) -> f64 {
    let mut samples: Vec<f64> = (0..SNAPSHOT_REPS)
        .map(|rep| {
            let mut ctx = setup(rep);
            let started = Instant::now();
            f(&mut ctx);
            let elapsed = started.elapsed().as_secs_f64() * 1e6;
            let _ = std::fs::remove_dir_all(scratch(tag, rep));
            elapsed
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    records: usize,
    median_us: f64,
    per_record_us: f64,
}

#[derive(serde::Serialize)]
struct Snapshot {
    host_threads: usize,
    reps_per_median: usize,
    note: String,
    benches: Vec<BenchEntry>,
}

fn entry(name: &str, records: usize, median: f64) -> BenchEntry {
    let per_record = median / records as f64;
    println!("{name:40} median {median:>10.1} us   per record {per_record:>8.2} us");
    BenchEntry { name: name.to_string(), records, median_us: median, per_record_us: per_record }
}

fn write_snapshot() {
    let host_threads =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    println!("\n== BENCH_durable.json snapshot (host_threads = {host_threads}) ==");
    let mut benches = Vec::new();

    // Single-record commits: GROUP commits, one fsync each.
    let single = median_us(
        "single",
        |rep| open_store(&scratch("single", rep)),
        |store| {
            for version in 1..=GROUP as u64 {
                store.log(&record(version)).expect("log");
                black_box(store.commit().expect("commit"));
            }
        },
    );
    benches.push(entry(&format!("commit/single_x{GROUP}"), GROUP, single));

    // Group commit: the same GROUP records behind one fsync.
    let grouped = median_us(
        "group",
        |rep| open_store(&scratch("group", rep)),
        |store| {
            let records: Vec<DurableRecord> = (1..=GROUP as u64).map(record).collect();
            black_box(store.log_all(&records).expect("group commit"));
        },
    );
    benches.push(entry(&format!("commit/group_{GROUP}"), GROUP, grouped));

    // Snapshot rotation: write + sync + rename + prune, one call.
    let rotate = median_us(
        "rotate",
        |rep| {
            let store = open_store(&scratch("rotate", rep));
            store.log_all(&[record(1)]).expect("seed record");
            store
        },
        |store| {
            black_box(store.snapshot("{\"n\":1}").expect("snapshot"));
        },
    );
    benches.push(entry("snapshot/rotate", 1, rotate));

    // Recovery: open a directory with one snapshot and REPLAY WAL
    // records behind it — checksum scan plus replay decode.
    let recover = median_us(
        "recover",
        |rep| {
            let dir = scratch("recover", rep);
            let store = open_store(&dir);
            let records: Vec<DurableRecord> = (1..=REPLAY as u64).map(record).collect();
            store.log_all(&records).expect("populate WAL");
            dir
        },
        |dir| {
            let storage: Arc<dyn Storage> =
                Arc::new(FsStorage::open(&*dir).expect("scratch directory opens"));
            let (_, recovered) =
                DurableStore::open(storage, ceer_faults::none(), "{}").expect("recovery");
            assert_eq!(recovered.replayed.len(), REPLAY, "replay covered the WAL");
            black_box(recovered);
        },
    );
    benches.push(entry(&format!("recover/replay_{REPLAY}"), REPLAY, recover));

    let snapshot = Snapshot {
        host_threads,
        reps_per_median: SNAPSHOT_REPS,
        note: format!(
            "durability costs on the real filesystem: committing {GROUP} records \
             one fsync at a time vs one group commit (the WAL's batching \
             amortizes the sync), one snapshot rotation (temp + fsync + rename), \
             and recovery of a {REPLAY}-record WAL suffix (checksum scan + replay)."
        ),
        benches,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durable.json");
    let body = serde_json::to_string_pretty(&snapshot).expect("serializes");
    write_atomic(path, (body + "\n").as_bytes()).expect("write BENCH_durable.json");
    println!("wrote {path}");
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("durable_commit");
    group.sample_size(20);
    let dir = scratch("criterion", 0);
    let store = open_store(&dir);
    let mut version = 0u64;
    group.bench_function("single_record", |b| {
        b.iter(|| {
            version += 1;
            store.log(&record(version)).expect("log");
            black_box(store.commit().expect("commit"))
        });
    });
    group.bench_function(format!("group_{GROUP}"), |b| {
        b.iter(|| {
            let records: Vec<DurableRecord> =
                (version + 1..=version + GROUP as u64).map(record).collect();
            version += GROUP as u64;
            black_box(store.log_all(&records).expect("group commit"))
        });
    });
    group.finish();
    drop(store);
    let _ = std::fs::remove_dir_all(dir);
}

fn main() {
    let mut criterion = Criterion::default();
    bench_commit(&mut criterion);
    write_snapshot();
}
