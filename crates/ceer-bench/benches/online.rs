//! What incremental refitting saves: folding a fresh batch of 100
//! observations into a long-lived sufficient-statistics accumulator and
//! solving, versus batch-refitting the entire history from scratch.
//!
//! The incremental path is O(batch) folds plus an O(p³) solve regardless
//! of how much history the accumulator carries; the from-scratch path
//! re-folds the whole history first, so its cost grows linearly with the
//! records seen. Both produce bit-identical models (pinned by
//! `tests/online_equivalence.rs`) — this bench quantifies why the online
//! loop keeps accumulators instead of sample logs.
//!
//! Besides the criterion timings this bench writes `BENCH_online.json`
//! at the repository root.

use std::hint::black_box;
use std::time::Instant;

use ceer_core::features::Features;
use ceer_core::{OpModel, OpModelAccumulator};
use ceer_gpusim::GpuModel;
use ceer_graph::OpKind;
use criterion::Criterion;

/// Repetitions behind each snapshot median.
const SNAPSHOT_REPS: usize = 5;
/// Records per arriving batch — the unit both arms are normalized to.
const BATCH: usize = 100;
/// Accumulated-history sizes the comparison sweeps.
const HISTORIES: [usize; 4] = [100, 400, 1600, 6400];

/// A deterministic synthetic observation stream (two linear regressors
/// plus the quadratic extra), mimicking per-op residual records.
fn sample(i: usize) -> (Features, f64) {
    let primary = 1.0 + (i % 97) as f64;
    let secondary = 1.0 + (i % 31) as f64 * 0.5;
    let noise = ((i % 13) as f64 - 6.0) * 0.3;
    let features =
        Features { linear: vec![primary, secondary], quadratic_extra: vec![primary * primary] };
    (features, 5.0 + 3.0 * primary + 0.7 * secondary + noise)
}

fn warm_accumulator(history: usize) -> OpModelAccumulator {
    let mut acc = OpModelAccumulator::new(OpKind::Conv2D, GpuModel::V100, true);
    for i in 0..history {
        let (f, y) = sample(i);
        acc.push(&f, y);
    }
    acc
}

/// Median wall-clock microseconds of `f` over `SNAPSHOT_REPS` runs.
fn median_us(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..SNAPSHOT_REPS)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    history: usize,
    batch: usize,
    median_us: f64,
    per_record_us: f64,
}

#[derive(serde::Serialize)]
struct Snapshot {
    host_threads: usize,
    reps_per_median: usize,
    note: String,
    benches: Vec<BenchEntry>,
}

fn entry(name: &str, history: usize, mut f: impl FnMut()) -> BenchEntry {
    let median = median_us(&mut f);
    let per_record = median / BATCH as f64;
    println!("{name:40} median {median:>10.1} us   per record {per_record:>8.2} us");
    BenchEntry {
        name: name.to_string(),
        history,
        batch: BATCH,
        median_us: median,
        per_record_us: per_record,
    }
}

fn write_snapshot() {
    let host_threads =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    println!("\n== BENCH_online.json snapshot (host_threads = {host_threads}) ==");
    let mut benches = Vec::new();
    for history in HISTORIES {
        // Incremental: the accumulator already carries `history` records;
        // each rep folds one fresh batch of 100 and solves. The
        // accumulator keeps growing across reps — exactly how the online
        // loop uses it — and the cost stays flat because the solve never
        // revisits old samples.
        let mut acc = warm_accumulator(history);
        let mut next = history;
        benches.push(entry(&format!("incremental/fold{BATCH}_after_{history}"), history, || {
            for i in next..next + BATCH {
                let (f, y) = sample(i);
                acc.push(&f, y);
            }
            next += BATCH;
            black_box(acc.fit().expect("non-empty accumulator fits"));
        }));
        // From scratch: refit the whole history plus the fresh batch as
        // one batch fit, the cost the online loop avoids.
        let all: Vec<(Features, f64)> = (0..history + BATCH).map(sample).collect();
        benches.push(entry(&format!("scratch/refit_{}", history + BATCH), history, || {
            black_box(OpModel::fit(OpKind::Conv2D, GpuModel::V100, black_box(&all)));
        }));
    }
    let snapshot = Snapshot {
        host_threads,
        reps_per_median: SNAPSHOT_REPS,
        note: format!(
            "cost of absorbing one batch of {BATCH} fresh observations into a \
             per-(op, GPU) model: incremental = fold the batch into a long-lived \
             sufficient-statistics accumulator and solve (flat in history); \
             scratch = batch-refit every record seen so far (linear in history). \
             The two paths are bit-identical in output."
        ),
        benches,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_online.json");
    let body = serde_json::to_string_pretty(&snapshot).expect("serializes");
    std::fs::write(path, body + "\n").expect("write BENCH_online.json");
    println!("wrote {path}");
}

fn bench_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_refit");
    group.sample_size(20);
    let history = HISTORIES[2];
    let warm = warm_accumulator(history);
    group.bench_function(format!("incremental_fold{BATCH}_after_{history}"), |b| {
        b.iter(|| {
            // Clone so every iteration folds into the same-size history
            // (the clone is a memcpy, small against the refold the
            // incremental path avoids).
            let mut acc = warm.clone();
            for i in history..history + BATCH {
                let (f, y) = sample(i);
                acc.push(&f, y);
            }
            black_box(acc.fit().expect("fits"))
        });
    });
    let all: Vec<(Features, f64)> = (0..history + BATCH).map(sample).collect();
    group.bench_function(format!("scratch_refit_{}", history + BATCH), |b| {
        b.iter(|| black_box(OpModel::fit(OpKind::Conv2D, GpuModel::V100, black_box(&all))));
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_refit(&mut criterion);
    write_snapshot();
}
