//! Benchmarks for Ceer itself: fitting cost, prediction latency (the price
//! of one "what if" query) and full-catalog recommendation.

use ceer_cloud::{Catalog, Pricing};
use ceer_core::recommend::{Objective, Workload};
use ceer_core::{Ceer, CeerModel, EstimateOptions, FitConfig};
use ceer_gpusim::GpuModel;
use ceer_graph::models::{Cnn, CnnId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn small_config() -> FitConfig {
    FitConfig {
        cnns: vec![CnnId::Vgg11, CnnId::InceptionV1, CnnId::ResNet50],
        iterations: 4,
        parallel_degrees: vec![1, 2],
        seed: 11,
        ..FitConfig::default()
    }
}

fn fitted() -> CeerModel {
    Ceer::fit(&small_config())
}

fn bench_fit(c: &mut Criterion) {
    let config = small_config();
    let mut group = c.benchmark_group("ceer_fit");
    group.sample_size(10);
    group.bench_function("3_cnns_4_iters", |b| b.iter(|| Ceer::fit(black_box(&config))));
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let model = fitted();
    let options = EstimateOptions::default();
    let mut group = c.benchmark_group("predict_iteration");
    for &id in &[CnnId::AlexNet, CnnId::InceptionV3, CnnId::Vgg19] {
        let cnn = Cnn::build(id, 32);
        let graph = cnn.training_graph();
        group.bench_with_input(BenchmarkId::from_parameter(id.name()), &graph, |b, graph| {
            b.iter(|| model.predict_iteration(black_box(graph), GpuModel::T4, 2, &options));
        });
    }
    group.finish();
}

fn bench_recommend(c: &mut Criterion) {
    let model = fitted();
    let catalog = Catalog::new(Pricing::OnDemand);
    let cnn = Cnn::build(CnnId::ResNet101, 32);
    let workload = Workload::new(1_200_000, 4);
    let mut group = c.benchmark_group("recommend");
    group.sample_size(20);
    group.bench_function("full_catalog_16_candidates", |b| {
        b.iter(|| {
            model.recommend(black_box(&cnn), &catalog, &workload, &Objective::MinimizeCost).unwrap()
        });
    });
    group.finish();
}

fn bench_model_persistence(c: &mut Criterion) {
    let model = fitted();
    let json = serde_json::to_string(&model).unwrap();
    c.bench_function("model_to_json", |b| {
        b.iter(|| serde_json::to_string(black_box(&model)).unwrap());
    });
    c.bench_function("model_from_json", |b| {
        b.iter(|| serde_json::from_str::<CeerModel>(black_box(&json)).unwrap());
    });
}

criterion_group!(benches, bench_fit, bench_predict, bench_recommend, bench_model_persistence);
criterion_main!(benches);
