//! Benchmarks for CNN graph construction and training-graph expansion —
//! the per-CNN setup cost every prediction and profiling run pays once.

use ceer_graph::models::{Cnn, CnnId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_forward_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_build");
    for &id in &[CnnId::AlexNet, CnnId::Vgg19, CnnId::InceptionV3, CnnId::ResNet152] {
        group.bench_with_input(BenchmarkId::from_parameter(id.name()), &id, |b, &id| {
            b.iter(|| Cnn::build(black_box(id), 32));
        });
    }
    group.finish();
}

fn bench_training_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_graph_expansion");
    for &id in &[CnnId::AlexNet, CnnId::InceptionV3, CnnId::ResNet152] {
        let cnn = Cnn::build(id, 32);
        group.bench_with_input(BenchmarkId::from_parameter(id.name()), &cnn, |b, cnn| {
            b.iter(|| cnn.training_graph());
        });
    }
    group.finish();
}

fn bench_graph_queries(c: &mut Criterion) {
    let cnn = Cnn::build(CnnId::InceptionV4, 32);
    let graph = cnn.training_graph();
    c.bench_function("op_histogram_inception_v4", |b| b.iter(|| black_box(&graph).op_histogram()));
    c.bench_function("parameter_count_inception_v4", |b| {
        b.iter(|| black_box(&graph).parameter_count());
    });
    c.bench_function("validate_inception_v4", |b| b.iter(|| black_box(&graph).validate()));
}

criterion_group!(benches, bench_forward_build, bench_training_expansion, bench_graph_queries);
criterion_main!(benches);
