//! Serial vs parallel wall clock for the `ceer-par`-backed hot paths:
//! fitting, cross-validation and the recommendation sweep.
//!
//! Besides the usual criterion timings this bench writes `BENCH_par.json`
//! at the repository root: a snapshot of serial vs 4-thread medians with
//! the host's core count, so the committed numbers can be read in context.
//! On a single-core host the 4-thread run measures pure pool overhead
//! (threads time-slice one core); the speedup materializes with the cores.

use std::hint::black_box;
use std::time::Instant;

use ceer_cloud::{Catalog, Pricing};
use ceer_core::crossval::leave_one_out;
use ceer_core::recommend::Workload;
use ceer_core::{Ceer, FitConfig};
use ceer_graph::models::{Cnn, CnnId};
use criterion::Criterion;

/// Thread count of the parallel arm in the snapshot.
const PAR_THREADS: usize = 4;
/// Repetitions behind each snapshot median.
const SNAPSHOT_REPS: usize = 5;

fn small_config() -> FitConfig {
    FitConfig {
        cnns: vec![CnnId::Vgg11, CnnId::InceptionV1, CnnId::ResNet50],
        iterations: 4,
        parallel_degrees: vec![1, 2],
        seed: 11,
        ..FitConfig::default()
    }
}

/// Median wall-clock microseconds of `f` over `SNAPSHOT_REPS` runs at the
/// given pool size.
fn median_us(threads: usize, mut f: impl FnMut()) -> f64 {
    let _guard = ceer_par::override_threads(threads);
    let mut samples: Vec<f64> = (0..SNAPSHOT_REPS)
        .map(|_| {
            let started = Instant::now();
            f();
            started.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[derive(serde::Serialize)]
struct BenchEntry {
    name: String,
    serial_us: f64,
    par_threads: usize,
    par_us: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Snapshot {
    host_threads: usize,
    par_threads: usize,
    reps_per_median: usize,
    note: String,
    benches: Vec<BenchEntry>,
}

fn snapshot_entry(name: &str, mut f: impl FnMut()) -> BenchEntry {
    let serial = median_us(1, &mut f);
    let parallel = median_us(PAR_THREADS, &mut f);
    println!(
        "{name:32} serial {:>10.0} us   {PAR_THREADS} threads {:>10.0} us   speedup {:.2}x",
        serial,
        parallel,
        serial / parallel
    );
    BenchEntry {
        name: name.to_string(),
        serial_us: serial,
        par_threads: PAR_THREADS,
        par_us: parallel,
        speedup: serial / parallel,
    }
}

fn write_snapshot() {
    let host_threads =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let config = small_config();
    let model = {
        let _guard = ceer_par::override_threads(1);
        Ceer::fit(&config)
    };
    let cnn = Cnn::build(CnnId::ResNet101, 32);
    let catalog = Catalog::new(Pricing::OnDemand);
    let workload = Workload::new(1_200_000, 4);

    println!("\n== BENCH_par.json snapshot (host_threads = {host_threads}) ==");
    let benches = vec![
        snapshot_entry("fit/3_cnns_4_iters", || {
            black_box(Ceer::fit(black_box(&config)));
        }),
        snapshot_entry("crossval/3_folds", || {
            black_box(leave_one_out(black_box(&config), &[1]));
        }),
        snapshot_entry("recommend/16_candidates", || {
            black_box(model.evaluate_candidates(black_box(&cnn), &catalog, &workload));
        }),
    ];
    let snapshot = Snapshot {
        host_threads,
        par_threads: PAR_THREADS,
        reps_per_median: SNAPSHOT_REPS,
        note: "serial vs parallel medians; with host_threads == 1 the parallel \
               arm measures pool overhead only (no cores to spread over), while \
               results stay bit-identical at every thread count"
            .to_string(),
        benches,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par.json");
    let body = serde_json::to_string_pretty(&snapshot).expect("serializes");
    std::fs::write(path, body + "\n").expect("write BENCH_par.json");
    println!("wrote {path}");
}

fn bench_fit(c: &mut Criterion) {
    let config = small_config();
    let mut group = c.benchmark_group("par_fit");
    group.sample_size(10);
    for threads in [1, PAR_THREADS] {
        group.bench_function(format!("{threads}_threads"), |b| {
            let _guard = ceer_par::override_threads(threads);
            b.iter(|| Ceer::fit(black_box(&config)));
        });
    }
    group.finish();
}

fn bench_crossval(c: &mut Criterion) {
    let config = small_config();
    let mut group = c.benchmark_group("par_crossval");
    group.sample_size(10);
    for threads in [1, PAR_THREADS] {
        group.bench_function(format!("{threads}_threads"), |b| {
            let _guard = ceer_par::override_threads(threads);
            b.iter(|| leave_one_out(black_box(&config), &[1]));
        });
    }
    group.finish();
}

fn bench_recommend(c: &mut Criterion) {
    let model = Ceer::fit(&small_config());
    let cnn = Cnn::build(CnnId::ResNet101, 32);
    let catalog = Catalog::new(Pricing::OnDemand);
    let workload = Workload::new(1_200_000, 4);
    let mut group = c.benchmark_group("par_recommend");
    group.sample_size(20);
    for threads in [1, PAR_THREADS] {
        group.bench_function(format!("{threads}_threads"), |b| {
            let _guard = ceer_par::override_threads(threads);
            b.iter(|| model.evaluate_candidates(black_box(&cnn), &catalog, &workload));
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_fit(&mut criterion);
    bench_crossval(&mut criterion);
    bench_recommend(&mut criterion);
    write_snapshot();
}
