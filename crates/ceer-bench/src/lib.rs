//! Shared helpers for the Criterion benchmark suite (see `benches/`).
