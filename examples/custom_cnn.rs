//! Custom CNN: build your *own* architecture with the layer API and let
//! Ceer pick an instance for it — the paper's core promise is that the
//! operation-level models generalize to any CNN built from known operation
//! types (§IV-D).
//!
//! ```text
//! cargo run --release --example custom_cnn
//! ```

use ceer::cloud::{Catalog, Pricing};
use ceer::gpusim::GpuModel;
use ceer::graph::backward::training_graph;
use ceer::graph::{GraphBuilder, Padding};
use ceer::model::{Ceer, EstimateOptions, FitConfig};

fn main() {
    // A little residual network that exists in no paper: 96x96 inputs,
    // three residual stages, global pooling.
    let mut b = GraphBuilder::new("my-resnet-ish");
    let (x, labels) = b.input(32, 96, 96, 3);

    b.push_scope("stem");
    let c = b.conv2d(&x, 32, (5, 5), (2, 2), Padding::Same, false);
    let n = b.batch_norm(&c);
    let mut t = b.relu(&n);
    b.pop_scope();

    for (stage, channels) in [(1u32, 64u64), (2, 128), (3, 256)] {
        b.push_scope(format!("stage{stage}"));
        // Downsample + widen.
        let c = b.conv2d(&t, channels, (3, 3), (2, 2), Padding::Same, false);
        let n = b.batch_norm(&c);
        t = b.relu(&n);
        // Two residual units.
        for _ in 0..2 {
            let c1 = b.conv2d(&t, channels, (3, 3), (1, 1), Padding::Same, false);
            let n1 = b.batch_norm(&c1);
            let r1 = b.relu(&n1);
            let c2 = b.conv2d(&r1, channels, (3, 3), (1, 1), Padding::Same, false);
            let n2 = b.batch_norm(&c2);
            let sum = b.add(&t, &n2);
            t = b.relu(&sum);
        }
        b.pop_scope();
    }

    b.push_scope("head");
    let gap = b.global_avg_pool(&t);
    let logits = b.dense(&gap, 1000, false);
    b.pop_scope();
    let loss = b.softmax_loss(&logits, &labels);
    let loss_id = loss.id();

    let forward = b.finish();
    let graph = training_graph(forward, loss_id);
    println!(
        "custom CNN: {} training ops, {:.2}M parameters",
        graph.len(),
        graph.parameter_count() as f64 / 1e6
    );

    // Fit Ceer on the standard zoo and predict for the custom net.
    let model = Ceer::fit(&FitConfig { iterations: 30, ..FitConfig::default() });
    let options = EstimateOptions::default();
    let catalog = Catalog::new(Pricing::OnDemand);

    println!("\npredicted iteration time and epoch cost (100k samples):");
    for &gpu in GpuModel::all() {
        let est = model.predict_iteration(&graph, gpu, 1, &options);
        let iterations = (100_000u64).div_ceil(32);
        let instance = catalog.instance(gpu, 1);
        let cost = est.total_us() * iterations as f64 * instance.usd_per_microsecond();
        println!(
            "  {:24} {:>8.1} ms/iter   ~${:.2} per epoch on {}",
            gpu.to_string(),
            est.total_us() / 1e3,
            cost,
            instance.name()
        );
    }
}
