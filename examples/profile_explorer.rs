//! Profile explorer: run the training simulator on one CNN and inspect
//! where the time goes — the operation-level view the whole paper is built
//! on (§III).
//!
//! ```text
//! cargo run --release --example profile_explorer -- [model]
//! ```

use std::collections::HashMap;

use ceer::gpusim::GpuModel;
use ceer::graph::models::{Cnn, CnnId};
use ceer::graph::{DeviceClass, OpKind};
use ceer::trainer::Trainer;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Inception-v3".into());
    let id = CnnId::all()
        .iter()
        .copied()
        .find(|m| m.name().eq_ignore_ascii_case(&name))
        .unwrap_or(CnnId::InceptionV3);

    let cnn = Cnn::build(id, 32);
    let graph = cnn.training_graph();
    println!(
        "{}: {} ops ({} forward+backward), {:.1}M parameters\n",
        id.name(),
        graph.len(),
        graph.count_device_class(DeviceClass::Gpu),
        graph.parameter_count() as f64 / 1e6
    );

    for &gpu in GpuModel::all() {
        let profile = Trainer::new(gpu, 1).with_seed(7).profile_graph(&cnn, &graph, 25);
        println!(
            "--- {} --- iteration {:.1} ms (compute {:.1} ms + sync {:.1} ms)",
            gpu,
            profile.iteration_mean_us() / 1e3,
            profile.compute_mean_us() / 1e3,
            profile.sync_mean_us() / 1e3
        );

        // Top op kinds by total time.
        let mut by_kind: HashMap<OpKind, (f64, usize)> = HashMap::new();
        for stat in profile.op_stats() {
            let e = by_kind.entry(stat.kind).or_insert((0.0, 0));
            e.0 += stat.mean_us;
            e.1 += 1;
        }
        let total: f64 = by_kind.values().map(|(t, _)| t).sum();
        let mut rows: Vec<_> = by_kind.into_iter().collect();
        rows.sort_by(|a, b| b.1 .0.partial_cmp(&a.1 .0).expect("finite"));
        for (kind, (time, count)) in rows.into_iter().take(8) {
            println!(
                "    {:28} {:>9.1} ms  {:>5.1}%  ({count} instances)",
                kind.to_string(),
                time / 1e3,
                100.0 * time / total
            );
        }
        println!();
    }
}
