//! Scaling study: how training time scales with the number of GPUs under
//! data parallelism (the paper's §III-D, generalized to any CNN in the
//! zoo), and how well Ceer predicts it without ever profiling the CNN.
//!
//! ```text
//! cargo run --release --example scaling_study -- [model] [samples]
//! ```

use ceer::gpusim::GpuModel;
use ceer::graph::models::{Cnn, CnnId};
use ceer::model::{Ceer, EstimateOptions, FitConfig};
use ceer::trainer::Trainer;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args
        .first()
        .and_then(|n| CnnId::all().iter().copied().find(|m| m.name().eq_ignore_ascii_case(n)))
        .unwrap_or(CnnId::InceptionV1);
    let samples: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6_400);

    println!("scaling study: {} over {samples} samples\n", id.name());

    // Fit Ceer once (the studied CNN may or may not be in its training set;
    // test-set CNNs demonstrate true generalization).
    let model = Ceer::fit(&FitConfig { iterations: 30, ..FitConfig::default() });

    let cnn = Cnn::build(id, 32);
    let graph = cnn.training_graph();
    let options = EstimateOptions::default();

    println!(
        "{:24} {:>5} {:>12} {:>12} {:>8} {:>10}",
        "GPU", "k", "observed(s)", "predicted(s)", "err", "speedup"
    );
    for &gpu in GpuModel::all() {
        let mut base = None;
        for k in 1..=4u32 {
            let observed = Trainer::new(gpu, k)
                .with_seed(1234)
                .profile_graph(&cnn, &graph, 15)
                .epoch_time_us(samples);
            let predicted = model.predict_epoch_us(&cnn, &graph, gpu, k, samples, &options);
            let base_time = *base.get_or_insert(observed);
            println!(
                "{:24} {:>5} {:>12.1} {:>12.1} {:>7.1}% {:>9.2}x",
                if k == 1 { gpu.to_string() } else { String::new() },
                k,
                observed / 1e6,
                predicted / 1e6,
                (predicted - observed).abs() / observed * 100.0,
                base_time / observed
            );
        }
    }
    println!(
        "\nNote the diminishing returns (§III-D of the paper): the jump from\n\
         1 to 2 GPUs helps far more than 3 to 4, because every extra GPU adds\n\
         synchronization overhead that grows with the model's parameter count."
    );
}
