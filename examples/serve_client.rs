//! Serve a fitted model over HTTP and talk to it with the blocking client:
//! fit, start the service on a free port, predict (twice, to show the
//! cache), ask for a recommendation, and read the metrics — then shut the
//! server down gracefully.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_client
//! ```

use ceer::model::{Ceer, EstimateOptions, FitConfig};
use ceer::serve::api::{PredictRequest, RecommendRequest};
use ceer::serve::{Client, ModelRegistry, Server, ServerConfig};

fn main() {
    // 1. Fit a model (fewer iterations than the paper's 1,000 keep the
    //    example fast) and start serving it. Port 0 asks the OS for a free
    //    port; a deployment would pass a fixed one (`ceer serve` defaults
    //    to 8100).
    let model = Ceer::fit(&FitConfig { iterations: 20, ..FitConfig::default() });
    let config = ServerConfig { port: 0, ..ServerConfig::default() };
    let server = Server::start(&config, ModelRegistry::from_model(model)).expect("bind");
    println!("serving on http://{}", server.addr());

    // 2. Predict over HTTP. The response is exactly what the library's
    //    estimator returns — and what `ceer predict --json` prints.
    let client = Client::new(server.addr());
    let request = PredictRequest {
        cnn: "resnet-101".to_string(),
        gpu: None,
        gpus: 2,
        batch: 32,
        samples: 1_200_000,
        options: EstimateOptions::default(),
    };
    let prediction = client.predict(&request).expect("predict");
    println!(
        "\n{} — batch {}/GPU on {} GPU(s), one epoch of {} samples:",
        prediction.cnn, prediction.batch, prediction.gpus, prediction.samples
    );
    for p in &prediction.predictions {
        println!(
            "  {:24} iteration {:>8.1} ms, epoch {:>6.2} h, ${:>6.2} on {}",
            p.gpu.to_string(),
            p.iteration_us / 1e3,
            p.epoch_us / 3.6e9,
            p.epoch_cost_usd,
            p.instance,
        );
    }

    // The same request again is answered from the LRU cache.
    client.predict(&request).expect("cached predict");

    // 3. Ask the recommender for the cheapest instance.
    let recommendation = client
        .recommend(&RecommendRequest {
            cnn: "resnet-101".to_string(),
            objective: None, // defaults to cost
            samples: 1_200_000,
            batch: 32,
            max_gpus: 4,
            epochs: 1,
            market: false,
            memory_fit: false,
        })
        .expect("recommend");
    let best = recommendation.best.expect("cost minimization is always feasible");
    println!(
        "\ncheapest instance: {} — predicted {:.2} h, ${:.2}",
        best.instance().name(),
        best.predicted_time_hours(),
        best.predicted_cost_usd()
    );

    // 4. The metrics endpoint shows what just happened.
    let metrics = client.metrics().expect("metrics");
    for (route, endpoint) in &metrics.endpoints {
        println!("{route:20} {} request(s), {} error(s)", endpoint.requests, endpoint.errors);
    }
    println!(
        "cache: {} hit(s), {} miss(es), hit rate {:.0}%",
        metrics.cache.hits,
        metrics.cache.misses,
        metrics.cache.hit_rate * 100.0
    );

    // 5. Graceful shutdown: stop accepting, drain, join every thread.
    server.shutdown();
    println!("\nserver stopped");
}
