//! Quickstart: fit Ceer on the paper's training CNNs, predict training time
//! and cost for a CNN it has never seen, and ask for an instance
//! recommendation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ceer::cloud::{Catalog, Pricing};
use ceer::gpusim::GpuModel;
use ceer::graph::models::{Cnn, CnnId};
use ceer::model::recommend::{Objective, Workload};
use ceer::model::{Ceer, EstimateOptions, FitConfig};

fn main() {
    // 1. Fit Ceer. `FitConfig::default()` reproduces the paper's
    //    methodology: profile the 8 training CNNs on all four AWS GPU
    //    models at 1-4 GPUs, then fit the regression/median/communication
    //    models. (Fewer iterations than the paper's 1,000 keep this example
    //    fast; accuracy is barely affected.)
    let config = FitConfig { iterations: 40, ..FitConfig::default() };
    println!("fitting Ceer on {} training CNNs ...", config.cnns.len());
    let model = Ceer::fit(&config);

    // 2. Predict for a test-set CNN (never seen during fitting).
    let cnn = Cnn::build(CnnId::ResNet101, 32);
    let graph = cnn.training_graph();
    println!(
        "\n{} — {:.1}M parameters, {} operations in the training graph",
        cnn.id(),
        graph.parameter_count() as f64 / 1e6,
        graph.len()
    );
    let options = EstimateOptions::default();
    println!("\npredicted per-iteration training time (batch 32/GPU):");
    for &gpu in GpuModel::all() {
        let est = model.predict_iteration(&graph, gpu, 1, &options);
        println!(
            "  {:24} {:>8.1} ms  (heavy {:>7.1} + light {:>5.1} + cpu {:>4.1} + comm {:>6.1})",
            gpu.to_string(),
            est.total_us() / 1e3,
            est.heavy_us / 1e3,
            est.light_us / 1e3,
            est.cpu_us / 1e3,
            est.comm_us / 1e3,
        );
    }

    // 3. Recommend the cheapest instance for one ImageNet epoch.
    let catalog = Catalog::new(Pricing::OnDemand);
    let workload = Workload::new(1_200_000, 4);
    let rec = model
        .recommend(&cnn, &catalog, &workload, &Objective::MinimizeCost)
        .expect("cost minimization is always feasible");
    println!(
        "\ncheapest way to train one ImageNet epoch: {}\n  predicted {:.2} h, ${:.2}",
        rec.instance(),
        rec.best().predicted_time_hours(),
        rec.best().predicted_cost_usd()
    );

    // ... and the fastest one under a $4/hr budget.
    let fast = model
        .recommend(
            &cnn,
            &catalog,
            &workload,
            &Objective::MinTimeUnderHourlyBudget { usd_per_hour: 4.0 },
        )
        .expect("something fits a $4/hr budget");
    println!(
        "fastest under $4/hr: {}\n  predicted {:.2} h, ${:.2}",
        fast.instance(),
        fast.best().predicted_time_hours(),
        fast.best().predicted_cost_usd()
    );
}
