//! Batch-size study: how per-iteration time, throughput, and memory needs
//! change with the per-GPU batch size — and how well Ceer (fitted at batch
//! 32 only) predicts all of it.
//!
//! ```text
//! cargo run --release --example batch_size_study -- [model] [gpu]
//! ```

use ceer::gpusim::GpuModel;
use ceer::graph::analysis;
use ceer::graph::models::{Cnn, CnnId};
use ceer::model::{Ceer, EstimateOptions, FitConfig};
use ceer::trainer::Trainer;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args
        .first()
        .and_then(|n| CnnId::all().iter().copied().find(|m| m.name().eq_ignore_ascii_case(n)))
        .unwrap_or(CnnId::InceptionV3);
    let gpu = match args.get(1).map(String::as_str) {
        Some("P2") | Some("p2") => GpuModel::K80,
        Some("G4") | Some("g4") => GpuModel::T4,
        Some("G3") | Some("g3") => GpuModel::M60,
        _ => GpuModel::V100,
    };

    println!("batch-size study: {} on {gpu}\n", id.name());
    let model = Ceer::fit(&FitConfig { iterations: 30, ..FitConfig::default() });
    let options = EstimateOptions::default();

    println!(
        "{:>6} {:>14} {:>14} {:>7} {:>16} {:>12} {:>8}",
        "batch", "observed/iter", "predicted/iter", "err", "samples/s (obs)", "train mem", "fits?"
    );
    for batch in [4u64, 8, 16, 32, 64, 128] {
        let cnn = Cnn::build(id, batch);
        let graph = cnn.training_graph();
        let observed = Trainer::new(gpu, 1)
            .with_seed(4242)
            .profile_graph(&cnn, &graph, 10)
            .iteration_mean_us();
        let predicted = model.predict_iteration(&graph, gpu, 1, &options).total_us();
        let memory = analysis::estimate_memory(&graph);
        println!(
            "{:>6} {:>11.1} ms {:>11.1} ms {:>6.1}% {:>16.0} {:>9.2} GiB {:>8}",
            batch,
            observed / 1e3,
            predicted / 1e3,
            (predicted - observed).abs() / observed * 100.0,
            batch as f64 / (observed / 1e6),
            memory.total_gib(),
            if memory.fits_gib(gpu.spec().memory_gib) { "yes" } else { "OOM" }
        );
    }
    println!(
        "\nLarger batches amortize per-op launch overhead and the per-iteration\n\
         communication, so throughput rises — until activations exhaust the\n\
         GPU's {} GiB. Ceer was fitted only at batch 32; its input-size\n\
         features carry the predictions to every other row.",
        gpu.spec().memory_gib
    );
}
