//! Instance advisor: a small CLI over Ceer's recommender.
//!
//! ```text
//! cargo run --release --example instance_advisor -- [model] [objective]
//!
//! model      alexnet | vgg16 | vgg19 | inception-v3 | resnet-50 | ... (default resnet-101)
//! objective  cost | time | hourly:<usd> | budget:<usd>              (default cost)
//! ```
//!
//! Prints the full ranked field of 16 candidate instances with predicted
//! training time and cost for one ImageNet epoch.

use ceer::cloud::{Catalog, Pricing};
use ceer::graph::models::{Cnn, CnnId};
use ceer::model::recommend::{Objective, Workload};
use ceer::model::{Ceer, FitConfig};

fn parse_model(name: &str) -> Option<CnnId> {
    let normalized = name.to_lowercase().replace(['_', ' '], "-");
    CnnId::all().iter().copied().find(|id| id.name().to_lowercase() == normalized).or(
        match normalized.as_str() {
            "alexnet" => Some(CnnId::AlexNet),
            "vgg11" => Some(CnnId::Vgg11),
            "vgg16" => Some(CnnId::Vgg16),
            "vgg19" => Some(CnnId::Vgg19),
            "inception-v1" | "googlenet" => Some(CnnId::InceptionV1),
            "inception-v3" => Some(CnnId::InceptionV3),
            "inception-v4" => Some(CnnId::InceptionV4),
            "resnet-50" | "resnet50" => Some(CnnId::ResNet50),
            "resnet-101" | "resnet101" => Some(CnnId::ResNet101),
            "resnet-152" | "resnet152" => Some(CnnId::ResNet152),
            "resnet-200" | "resnet200" => Some(CnnId::ResNet200),
            _ => None,
        },
    )
}

fn parse_objective(arg: &str) -> Option<Objective> {
    if let Some(rest) = arg.strip_prefix("hourly:") {
        return rest
            .parse()
            .ok()
            .map(|usd_per_hour| Objective::MinTimeUnderHourlyBudget { usd_per_hour });
    }
    if let Some(rest) = arg.strip_prefix("budget:") {
        return rest.parse().ok().map(|usd| Objective::MinTimeUnderTotalBudget { usd });
    }
    match arg {
        "cost" => Some(Objective::MinimizeCost),
        "time" => Some(Objective::MinimizeTime),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args
        .first()
        .map(|a| parse_model(a).unwrap_or_else(|| panic!("unknown model {a:?}")))
        .unwrap_or(CnnId::ResNet101);
    let objective = args
        .get(1)
        .map(|a| parse_objective(a).unwrap_or_else(|| panic!("unknown objective {a:?}")))
        .unwrap_or(Objective::MinimizeCost);

    println!("advising for {} under {objective:?} ...", id.name());
    let model = Ceer::fit(&FitConfig { iterations: 40, ..FitConfig::default() });
    let cnn = Cnn::build(id, 32);
    let catalog = Catalog::new(Pricing::OnDemand);
    let workload = Workload::new(1_200_000, 4);

    match model.recommend(&cnn, &catalog, &workload, &objective) {
        None => println!("no instance satisfies the budget — paper §V saw this too (Fig. 10)"),
        Some(rec) => {
            println!("\nrecommendation: {}\n", rec.instance());
            println!("{:28} {:>9} {:>9}  feasible", "instance", "time (h)", "cost");
            for candidate in rec.ranking() {
                println!(
                    "{:28} {:>9.2} {:>9} {:>9}",
                    candidate.instance().name(),
                    candidate.predicted_time_hours(),
                    format!("${:.2}", candidate.predicted_cost_usd()),
                    if candidate.is_feasible(&objective) { "yes" } else { "no" }
                );
            }
        }
    }
}
