//! Offline stand-in for the [`rand`] crate.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`] and the high-level [`Rng`] extension with `gen::<f64>()`
//! / `gen::<bool>()` / `gen_range(..)` — over any core generator (the
//! sibling `rand_chacha` stand-in supplies ChaCha8).
//!
//! Determinism is the only contract the workspace relies on (same seed ⇒
//! same stream); the exact streams are *not* promised to match crates.io
//! `rand`, and no golden values in the repository depend on them.

#![forbid(unsafe_code)]

/// A low-level generator of raw random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a 64-bit state via SplitMix64 (the same
    /// construction real `rand` uses for its `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
    impl Sealed for bool {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: private::Sealed + Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased rejection sampling (Lemire's method without the
                // multiply-shift shortcut, for clarity).
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone {
                        return self.start + (raw % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    // Full domain: every draw is valid.
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial deterministic core for testing the trait plumbing.
    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is fine for API tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
