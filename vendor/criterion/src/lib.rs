//! Offline stand-in for the [`criterion`] crate.
//!
//! Implements the API the `ceer-bench` targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`/`criterion_main!` — over a simple
//! wall-clock timer. No statistical analysis, outlier rejection, or HTML
//! reports: each benchmark is timed adaptively for a small budget and the
//! mean iteration time (plus throughput, when declared) is printed.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring each benchmark (after warm-up).
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(200);

/// Iteration ceiling so trivially cheap closures terminate early.
const MAX_ITERATIONS: u64 = 100_000;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/bytes-per-second reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id carrying both a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id naming only the parameter (the group supplies the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the measurement budget
    /// is spent (with one untimed warm-up call first).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let started = Instant::now();
        let mut iterations = 0u64;
        while started.elapsed() < MEASUREMENT_BUDGET && iterations < MAX_ITERATIONS {
            std::hint::black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations;
        self.elapsed = started.elapsed();
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iterations: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label:<48} (no measurement: closure never called iter)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!("{label:<48} {:>12}  ({} iters){rate}", format_time(per_iter), bencher.iterations);
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
