//! Offline stand-in for [`rand_chacha`]: the ChaCha block function (8
//! rounds) driving a counter-mode RNG with 64-bit independent streams.
//!
//! The block function is the real RFC-8439 ChaCha quarter-round network, so
//! statistical quality matches the crates.io crate; the word-consumption
//! order is deterministic but not promised to be identical to upstream
//! (nothing in this workspace depends on upstream's exact stream).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha RNG with 8 rounds.
///
/// Supports [`set_stream`](ChaCha8Rng::set_stream): generators that differ
/// only in stream id produce independent sequences, and the sequence is a
/// pure function of `(seed, stream, position)`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key (words 4..12 of the initial state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// 64-bit stream id (words 14..16).
    stream: u64,
    /// The current 16-word output block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Computes the output block for the current `(key, counter, stream)`.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.index = 0;
    }

    /// Selects the 64-bit stream id, restarting output at the stream's
    /// beginning. Generators differing only in stream id are independent.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16; // force refill on next draw
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, stream: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
            self.counter = self.counter.wrapping_add(1);
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = self.next_u32() as u64;
        let high = self.next_u32() as u64;
        low | (high << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let identical = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(identical < 4);
    }

    #[test]
    fn streams_are_independent_and_order_free() {
        let root = ChaCha8Rng::seed_from_u64(7);
        let mut s1 = root.clone();
        s1.set_stream(1);
        let first = s1.next_u64();
        // Reaching stream 1 after touching stream 2 yields the same value.
        let mut s2 = root.clone();
        s2.set_stream(2);
        let _ = s2.next_u64();
        let mut s1_again = root.clone();
        s1_again.set_stream(1);
        assert_eq!(s1_again.next_u64(), first);
        // And stream 2 differs from stream 1.
        let mut other = root.clone();
        other.set_stream(2);
        assert_ne!(other.next_u64(), first);
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // Drain more than one 16-word block and check non-repetition.
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn uniform_f64_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chacha_block_function_matches_known_structure() {
        // The all-zero key/counter/stream block must be stable (regression
        // pin so refactors cannot silently change every simulation).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let w0 = rng.next_u32();
        let mut rng2 = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(w0, rng2.next_u32());
        assert_ne!(w0, 0);
    }
}
