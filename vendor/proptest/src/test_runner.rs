//! The case loop: sample inputs, run the body, report failures.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::{Strategy, TestRng};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs through the property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert!` / `prop_assert_eq!` inside one case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

/// Drives every case of one property.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `config.cases` inputs sampled from `strategy`.
    ///
    /// The RNG seed is a hash of `name`, so a property's input sequence is
    /// stable across runs and independent of sibling tests; a failure
    /// panics with the case index and the `Debug` form of the input.
    pub fn run<S, F>(&self, name: &str, strategy: S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let seed = fnv1a(name.as_bytes());
        for case in 0..self.config.cases {
            let mut rng = TestRng::for_case(seed, case as u64);
            let input = strategy.sample(&mut rng);
            let rendered = format!("{input:?}");
            match catch_unwind(AssertUnwindSafe(|| test(input))) {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError(message))) => panic!(
                    "proptest case {case}/{total} of `{name}` failed: {message}\n    \
                     input: {rendered}",
                    total = self.config.cases,
                ),
                Err(payload) => {
                    eprintln!(
                        "proptest case {case}/{total} of `{name}` panicked\n    \
                         input: {rendered}",
                        total = self.config.cases,
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// FNV-1a, enough to decorrelate per-test seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}
