//! Offline stand-in for the [`proptest`] crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range / tuple / `Just` /
//! `prop_oneof!` / `any::<T>()` / `prop::collection::vec` strategies,
//! `.prop_map`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from crates.io proptest, deliberate for an offline shim:
//! inputs are sampled from a per-test deterministic ChaCha stream (the seed
//! is a hash of the test name, the case index selects the substream), and
//! failing cases are reported with their `Debug` rendering but are **not
//! shrunk** to a minimal counterexample.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).

    use crate::strategy::{Strategy, TestRng};

    /// A size specification: an exact length, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — vectors of random length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.min, self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path alias (e.g. `prop::collection::vec`).
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case (not the whole process) fails with the rendered message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Uniformly picks one of several same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let runner = $crate::test_runner::TestRunner::new(config);
                runner.run(stringify!($name), ($($strat,)+), |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..=9, b in 0.25f64..0.75, n in 1usize..5) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size(xs in prop::collection::vec(-1.0f64..1.0, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for x in &xs {
                prop_assert!((-1.0..1.0).contains(x));
            }
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(1u64),
            (2u64..=3, any::<bool>()).prop_map(|(x, flip)| if flip { x * 10 } else { x }),
        ]) {
            prop_assert!(matches!(v, 1 | 2 | 3 | 20 | 30), "unexpected {v}");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::{Strategy, TestRng};
        let strat = crate::collection::vec(0u64..100, 3..8);
        let a = strat.sample(&mut TestRng::for_case(7, 0));
        let b = strat.sample(&mut TestRng::for_case(7, 0));
        assert_eq!(a, b);
        let c = strat.sample(&mut TestRng::for_case(7, 1));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_input() {
        let runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(8));
        runner.run("always_fails", (0u64..10,), |(x,)| {
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        });
    }
}
