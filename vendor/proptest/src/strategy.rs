//! Strategies: deterministic samplers of test inputs.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The deterministic generator handed to strategies.
///
/// Each test case owns one: the seed identifies the test, the ChaCha stream
/// id identifies the case, so every case is reproducible in isolation.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Generator for case `case` of the test seeded with `seed`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        let mut inner = ChaCha8Rng::seed_from_u64(seed);
        inner.set_stream(case);
        TestRng { inner }
    }

    /// Uniform `usize` in `[min, max_exclusive)`.
    pub fn usize_in(&mut self, min: usize, max_exclusive: usize) -> usize {
        assert!(min < max_exclusive, "empty range");
        self.inner.gen_range(min..max_exclusive)
    }
}

/// A source of random values of one type.
///
/// Object safe (only `sample` lands in the vtable), so `prop_oneof!` can mix
/// differently-typed strategies behind [`BoxedStrategy`].
pub trait Strategy {
    /// The produced type; `Debug` so failing cases can be reported.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes drawn values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice between several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The full domain of `T` (only what [`rand`]'s standard distribution
/// covers: `bool`, `u32`, `u64`, `f32`, `f64`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — T's canonical whole-domain strategy.
pub fn any<T: rand::Standard + fmt::Debug>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard + fmt::Debug> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.inner.gen::<T>()
    }
}

macro_rules! impl_uint_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_uint_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}
