//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in.
//!
//! `syn` and `quote` are not available in this build environment, so the
//! input item is parsed by walking `proc_macro::TokenTree`s directly and the
//! generated impl is assembled as a string. The supported grammar covers
//! what this workspace uses:
//!
//! - structs with named fields;
//! - tuple structs (a single-field newtype serializes transparently as its
//!   inner value, wider tuples as arrays);
//! - enums with unit, newtype, tuple and struct variants (externally tagged
//!   like real serde: unit variants as `"Name"`, data variants as
//!   `{"Name": ...}`);
//! - field attributes `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]` and `#[serde(with = "module")]`.
//!
//! Generic type parameters are intentionally unsupported (no type in the
//! workspace needs them); the macro fails loudly if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` (value-tree parsing).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().expect("error tokens")
        }
    };
    let code = match (&item.body, direction) {
        (Body::NamedStruct(fields), Direction::Serialize) => named_struct_ser(&item.name, fields),
        (Body::NamedStruct(fields), Direction::Deserialize) => named_struct_de(&item.name, fields),
        (Body::TupleStruct(types), Direction::Serialize) => tuple_struct_ser(&item.name, types),
        (Body::TupleStruct(types), Direction::Deserialize) => tuple_struct_de(&item.name, types),
        (Body::Enum(variants), Direction::Serialize) => enum_ser(&item.name, variants),
        (Body::Enum(variants), Direction::Deserialize) => enum_de(&item.name, variants),
    };
    code.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    body: Body,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    ty: String,
    attrs: SerdeAttrs,
}

#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
    with: Option<String>,
}

enum VariantBody {
    Unit,
    Newtype(String),
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes one outer attribute (`#[...]`) if present; returns its
    /// serde payload when it is a `#[serde(...)]` attribute.
    fn eat_attribute(&mut self) -> Option<Option<TokenStream>> {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
            _ => return None,
        }
        self.next(); // '#'
        let group = match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Some(None), // malformed; treat as consumed
        };
        let mut inner = group.stream().into_iter();
        match inner.next() {
            Some(TokenTree::Ident(name)) if name.to_string() == "serde" => {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    return Some(Some(args.stream()));
                }
                Some(None)
            }
            _ => Some(None),
        }
    }

    /// Consumes every leading attribute, merging serde payloads.
    fn eat_attributes(&mut self) -> SerdeAttrs {
        let mut attrs = SerdeAttrs::default();
        while let Some(serde_payload) = self.eat_attribute() {
            if let Some(payload) = serde_payload {
                parse_serde_attr(payload, &mut attrs);
            }
        }
        attrs
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn eat_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Collects tokens until a comma outside any `<...>` nesting (or the
    /// end), rendering them as source text. Used for field types.
    fn collect_type(&mut self) -> String {
        let mut out = String::new();
        let mut angle_depth = 0usize;
        while let Some(token) = self.peek() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    ',' if angle_depth == 0 => break,
                    '<' => angle_depth += 1,
                    // `>>` arrives as two Puncts, so counting chars works.
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    _ => {}
                }
            }
            let token = self.next().expect("peeked");
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&token.to_string());
        }
        out
    }

    /// Consumes a `,` if present.
    fn eat_comma(&mut self) {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ',' {
                self.next();
            }
        }
    }
}

/// Parses the contents of one `#[serde(...)]` attribute into `attrs`.
fn parse_serde_attr(payload: TokenStream, attrs: &mut SerdeAttrs) {
    let mut cursor = Cursor::new(payload);
    while let Some(token) = cursor.next() {
        let TokenTree::Ident(name) = token else { continue };
        match name.to_string().as_str() {
            "skip" => attrs.skip = true,
            "default" => {
                // Optional `= "path"`.
                let mut path = None;
                if let Some(TokenTree::Punct(p)) = cursor.peek() {
                    if p.as_char() == '=' {
                        cursor.next();
                        if let Some(TokenTree::Literal(lit)) = cursor.next() {
                            path = Some(unquote(&lit.to_string()));
                        }
                    }
                }
                attrs.default = Some(path);
            }
            "with" => {
                if let Some(TokenTree::Punct(p)) = cursor.peek() {
                    if p.as_char() == '=' {
                        cursor.next();
                        if let Some(TokenTree::Literal(lit)) = cursor.next() {
                            attrs.with = Some(unquote(&lit.to_string()));
                        }
                    }
                }
            }
            _ => {} // unsupported serde attributes are ignored
        }
        cursor.eat_comma();
    }
}

/// Strips the quotes from a string literal's source text.
fn unquote(literal: &str) -> String {
    literal.trim_matches('"').to_string()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    loop {
        if cursor.eat_attribute().is_none() {
            break;
        }
    }
    cursor.eat_visibility();
    let keyword = match cursor.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match cursor.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde stand-in derive does not support generics (on {name})"));
        }
    }
    let body = match keyword.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(parse_tuple_fields(g.stream()))
            }
            other => return Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body for {name}, got {other:?}")),
        },
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };
    Ok(Item { name, body })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let attrs = cursor.eat_attributes();
        cursor.eat_visibility();
        let name = match cursor.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field {name}, got {other:?}")),
        }
        let ty = cursor.collect_type();
        cursor.eat_comma();
        fields.push(Field { name, ty, attrs });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<String> {
    let mut cursor = Cursor::new(stream);
    let mut types = Vec::new();
    while !cursor.at_end() {
        let _ = cursor.eat_attributes();
        cursor.eat_visibility();
        let ty = cursor.collect_type();
        cursor.eat_comma();
        if !ty.is_empty() {
            types.push(ty);
        }
    }
    types
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        let _ = cursor.eat_attributes();
        let name = match cursor.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let body = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                cursor.next();
                VariantBody::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.clone();
                cursor.next();
                let types = parse_tuple_fields(g.stream());
                if types.len() == 1 {
                    VariantBody::Newtype(types.into_iter().next().expect("one"))
                } else {
                    VariantBody::Tuple(types)
                }
            }
            _ => VariantBody::Unit,
        };
        cursor.eat_comma();
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `field.to_value()` respecting `with`.
fn field_ser_expr(field: &Field, access: &str) -> String {
    match &field.attrs.with {
        Some(module) => format!("{module}::to_value({access})"),
        None => format!("serde::Serialize::to_value({access})"),
    }
}

/// Deserialization expression for a field looked up as `__v` (an
/// `Option<&serde::Value>`), respecting `skip`, `default` and `with`.
fn field_de_expr(field: &Field, container: &str) -> String {
    if field.attrs.skip {
        return "::core::default::Default::default()".to_string();
    }
    let parse = match &field.attrs.with {
        Some(module) => format!("{module}::from_value(__v)?"),
        None => format!("<{} as serde::Deserialize>::from_value(__v)?", field.ty),
    };
    let missing = match &field.attrs.default {
        Some(None) => "::core::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        None => {
            // Real serde treats a missing field as `None` for Option<T>.
            if field.ty.replace(' ', "").starts_with("Option<") {
                "::core::option::Option::None".to_string()
            } else {
                format!(
                    "return ::core::result::Result::Err(serde::Error::missing_field({:?}, {:?}))",
                    field.name, container
                )
            }
        }
    };
    format!(
        "match __obj.iter().find(|(__k, _)| __k == {name:?}).map(|(_, __val)| __val) {{ \
             ::core::option::Option::Some(__v) => {parse}, \
             ::core::option::Option::None => {missing}, \
         }}",
        name = field.name,
    )
}

fn named_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for field in fields {
        if field.attrs.skip {
            continue;
        }
        let expr = field_ser_expr(field, &format!("&self.{}", field.name));
        pushes.push_str(&format!("__fields.push(({:?}.to_string(), {expr}));\n", field.name));
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(__fields)\n\
             }}\n\
         }}"
    )
}

fn named_struct_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for field in fields {
        inits.push_str(&format!("{}: {},\n", field.name, field_de_expr(field, name)));
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__value: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n\
                 let __obj = __value.as_object().ok_or_else(|| serde::Error::invalid_type(\"object\", __value))?;\n\
                 ::core::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}"
    )
}

fn tuple_struct_ser(name: &str, types: &[String]) -> String {
    let body = if types.len() == 1 {
        "serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> =
            (0..types.len()).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
        format!("serde::Value::Array(::std::vec![{}])", items.join(", "))
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn tuple_struct_de(name: &str, types: &[String]) -> String {
    let body = if types.len() == 1 {
        format!(
            "::core::result::Result::Ok({name}(<{} as serde::Deserialize>::from_value(__value)?))",
            types[0]
        )
    } else {
        let mut items = String::new();
        for (i, ty) in types.iter().enumerate() {
            items.push_str(&format!("<{ty} as serde::Deserialize>::from_value(&__items[{i}])?, "));
        }
        format!(
            "let __items = __value.as_array().ok_or_else(|| serde::Error::invalid_type(\"array\", __value))?;\n\
             if __items.len() != {len} {{\n\
                 return ::core::result::Result::Err(serde::Error::custom(format!(\n\
                     \"expected array of length {len} for {name}, found {{}}\", __items.len())));\n\
             }}\n\
             ::core::result::Result::Ok({name}({items}))",
            len = types.len(),
        )
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__value: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.body {
            VariantBody::Unit => arms.push_str(&format!(
                "{name}::{vname} => serde::Value::String({vname:?}.to_string()),\n"
            )),
            VariantBody::Newtype(_) => arms.push_str(&format!(
                "{name}::{vname}(__inner) => serde::Value::Object(::std::vec![({vname:?}.to_string(), serde::Serialize::to_value(__inner))]),\n"
            )),
            VariantBody::Tuple(types) => {
                let binders: Vec<String> = (0..types.len()).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => serde::Value::Object(::std::vec![({vname:?}.to_string(), serde::Value::Array(::std::vec![{items}]))]),\n",
                    binds = binders.join(", "),
                    items = items.join(", "),
                ));
            }
            VariantBody::Struct(fields) => {
                let binders: Vec<String> =
                    fields.iter().map(|f| f.name.clone()).collect();
                let mut pushes = String::new();
                for field in fields {
                    if field.attrs.skip {
                        continue;
                    }
                    let expr = field_ser_expr(field, &field.name);
                    pushes.push_str(&format!(
                        "__fields.push(({:?}.to_string(), {expr}));\n",
                        field.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(::std::vec![({vname:?}.to_string(), serde::Value::Object(__fields))])\n\
                     }},\n",
                    binds = binders.join(", "),
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}"
    )
}

fn enum_de(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as plain strings.
    let mut unit_arms = String::new();
    for variant in variants {
        if matches!(variant.body, VariantBody::Unit) {
            unit_arms.push_str(&format!(
                "{:?} => return ::core::result::Result::Ok({name}::{vname}),\n",
                variant.name,
                vname = variant.name,
            ));
        }
    }
    // Data variants arrive as single-entry objects {"Name": payload}.
    let mut tagged_arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.body {
            VariantBody::Unit => {
                // Also accept {"Name": null} for symmetry.
                tagged_arms.push_str(&format!(
                    "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantBody::Newtype(ty) => tagged_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}(<{ty} as serde::Deserialize>::from_value(__payload)?)),\n"
            )),
            VariantBody::Tuple(types) => {
                let mut items = String::new();
                for (i, ty) in types.iter().enumerate() {
                    items.push_str(&format!(
                        "<{ty} as serde::Deserialize>::from_value(&__items[{i}])?, "
                    ));
                }
                tagged_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let __items = __payload.as_array().ok_or_else(|| serde::Error::invalid_type(\"array\", __payload))?;\n\
                         if __items.len() != {len} {{\n\
                             return ::core::result::Result::Err(serde::Error::custom(\"wrong tuple variant arity\"));\n\
                         }}\n\
                         ::core::result::Result::Ok({name}::{vname}({items}))\n\
                     }},\n",
                    len = types.len(),
                ));
            }
            VariantBody::Struct(fields) => {
                let mut inits = String::new();
                for field in fields {
                    inits.push_str(&format!(
                        "{}: {},\n",
                        field.name,
                        field_de_expr(field, &format!("{name}::{vname}"))
                    ));
                }
                tagged_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let __obj = __payload.as_object().ok_or_else(|| serde::Error::invalid_type(\"object\", __payload))?;\n\
                         ::core::result::Result::Ok({name}::{vname} {{\n\
                             {inits}\
                         }})\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__value: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n\
                 if let ::core::option::Option::Some(__s) = __value.as_str() {{\n\
                     match __s {{\n\
                         {unit_arms}\
                         __other => return ::core::result::Result::Err(serde::Error::custom(\n\
                             format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                 }}\n\
                 let __obj = __value.as_object().ok_or_else(|| serde::Error::invalid_type(\"string or object\", __value))?;\n\
                 if __obj.len() != 1 {{\n\
                     return ::core::result::Result::Err(serde::Error::custom(\n\
                         format!(\"expected single-key variant object for {name}\")));\n\
                 }}\n\
                 let (__tag, __payload) = &__obj[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __other => ::core::result::Result::Err(serde::Error::custom(\n\
                         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
