//! Offline stand-in for [`serde_json`].
//!
//! Parses JSON text into [`serde::Value`] trees and renders them back,
//! exposing the `to_string` / `to_string_pretty` / `to_vec` / `from_str` /
//! `from_slice` entry points the workspace uses. Floats are printed with
//! std's shortest-round-trip formatting (`{:?}`), so every finite `f64`
//! survives a serialize → parse cycle bit-exactly — the property the real
//! crate's `float_roundtrip` feature is enabled for in this workspace.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Errors when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to a human-indented JSON string (2-space indent, like
/// the real crate).
///
/// # Errors
///
/// Errors when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
///
/// # Errors
///
/// Errors when the value contains a non-finite float.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` to pretty JSON bytes.
///
/// # Errors
///
/// Errors when the value contains a non-finite float.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Errors when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Errors on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Parses JSON bytes (UTF-8) into a `T`.
///
/// # Errors
///
/// Errors on invalid UTF-8, malformed JSON or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinite numbers"));
            }
            // Debug formatting is shortest-round-trip ("3.0", not "3"), so
            // float-typed fields keep a float-shaped representation and
            // re-serialization is stable.
            let _ = write!(out, "{f:?}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (with nothing but whitespace after it).
fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters after JSON document at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            other => Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos.saturating_sub(1),
                other.map(|b| b as char),
            ))),
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        for &b in keyword.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let unit = self.parse_hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::custom("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| Error::custom("invalid code point"))?
                        } else {
                            char::from_u32(unit)
                                .ok_or_else(|| Error::custom("invalid code point"))?
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "invalid escape \\{:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(byte) if byte < 0x20 => {
                    return Err(Error::custom("raw control character in string"))
                }
                Some(byte) => {
                    // Re-assemble multi-byte UTF-8 (input was validated).
                    if byte.is_ascii() {
                        out.push(byte as char);
                    } else {
                        let len = match byte {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let start = self.pos - 1;
                        self.pos = start + len;
                        let slice = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                        let s = std::str::from_utf8(slice)
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                other => {
                    return Err(Error::custom(format!(
                        "invalid hex digit {:?}",
                        other.map(|b| b as char)
                    )))
                }
            };
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Integer literal too large for 64 bits: fall through to f64.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number literal {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-5", "3.5", "\"hi\"", "1e300"] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text} -> {back}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 6.02e23, -2.5e-300, 123_456_789.123_456_79] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {text} -> {back}");
        }
    }

    #[test]
    fn float_typed_values_keep_float_shape() {
        // 3.0f64 must not serialize as "3" and come back as an integer that
        // breaks f64-typed fields.
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        let back: f64 = from_str("3.0").unwrap();
        assert_eq!(back, 3.0);
        // But integer-shaped input still deserializes into f64 fields.
        let lenient: f64 = from_str("3").unwrap();
        assert_eq!(lenient, 3.0);
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,"x",null,{"b":true}],"c":{"d":[[]]}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn string_escapes() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1F600}é";
        let json = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
        // Parse the escape forms too.
        let v: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v, "Aé\u{1F600}");
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":3}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in ["", "{", "[1,", "{\"a\"}", "tru", "\"unterminated", "01x", "[1] trailing"] {
            assert!(from_str::<Value>(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn non_finite_floats_refuse_to_serialize() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
