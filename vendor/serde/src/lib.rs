//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate re-implements the slice of serde the workspace actually uses:
//! a self-describing value tree ([`Value`]), [`Serialize`]/[`Deserialize`]
//! traits over it, impls for the primitives and std containers that appear
//! in the codebase, and `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` crate) supporting the `#[serde(skip)]`,
//! `#[serde(default)]`, `#[serde(default = "path")]` and
//! `#[serde(with = "module")]` field attributes.
//!
//! Unlike real serde there is no streaming serializer/deserializer pair:
//! everything goes through [`Value`]. `serde_json` (the sibling stand-in)
//! renders that tree to JSON text and parses it back. The simplification is
//! invisible to this workspace, which only ever serializes finite-size
//! models, profiles and API payloads.
//!
//! Custom `#[serde(with = "module")]` modules implement
//!
//! ```ignore
//! fn to_value(field: &T) -> serde::Value;
//! fn from_value(value: &serde::Value) -> Result<T, serde::Error>;
//! ```

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the data model JSON maps onto).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (only produced for negative numbers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number (finite).
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (insertion order is preserved so that
    /// serialization is deterministic and stable).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a u64 (accepts non-negative signed values too).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as an f64 (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object slice, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Objects index by key; anything else (or a missing key) yields `null`,
    /// matching `serde_json`'s behavior.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, container: &str) -> Self {
        Error { message: format!("missing field `{field}` in {container}") }
    }

    /// A value had the wrong shape.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error { message: format!("invalid type: expected {expected}, found {}", got.kind()) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Errors when the tree does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| Error::invalid_type("unsigned integer", value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| Error::invalid_type("integer", value))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::invalid_type("bool", value))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::invalid_type("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|f| f as f32).ok_or_else(|| Error::invalid_type("number", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| Error::invalid_type("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::invalid_type("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::invalid_type("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Renders a map key. Keys must serialize to strings or integers (JSON
/// objects require string keys), mirroring `serde_json`'s restriction.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::String(s) => Ok(s.clone()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(Error::custom(format!("map key must be a string, got {}", other.kind()))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value())
                        .expect("BTreeMap keys must serialize to strings");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let fields = value.as_object().ok_or_else(|| Error::invalid_type("object", value))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key =
                    key_to_string(&k.to_value()).expect("HashMap keys must serialize to strings");
                (key, v.to_value())
            })
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let fields = value.as_object().ok_or_else(|| Error::invalid_type("object", value))?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn f64_accepts_integral_values() {
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
    }

    #[test]
    fn option_maps_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(1)).unwrap(), Some(1));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u64, 2u64).to_value();
        assert_eq!(v, Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(<(u64, u64)>::from_value(&v).unwrap(), (1, 2));
        assert!(<(u64, u64)>::from_value(&Value::Array(vec![Value::UInt(1)])).is_err());
    }

    #[test]
    fn btreemap_uses_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        assert_eq!(
            v,
            Value::Object(vec![("a".into(), Value::UInt(1)), ("b".into(), Value::UInt(2)),])
        );
        assert_eq!(BTreeMap::<String, u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![("x".into(), Value::UInt(9))]);
        assert_eq!(v["x"].as_u64(), Some(9));
        assert!(v["missing"].is_null());
        assert_eq!(Value::String("s".into()), "s");
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
